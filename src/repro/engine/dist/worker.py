"""The distributed worker: pull units, execute, stream rows back.

A worker is one process (``repro worker --connect HOST:PORT``, or a
:class:`Worker` driven in-process by tests and benchmarks) that serves
exactly one coordinator.  Its loop is deliberately boring:

1. connect — with retry, so workers can be started *before* the
   coordinator binds (CI starts two workers in the background, then
   launches ``repro run --backend dist``);
2. handshake — ``hello`` up, ``welcome`` down (the welcome names the
   run's shared trace-artifact directory, the heartbeat interval, and
   the result-batching threshold); when the coordinator is configured
   with a shared token it interposes an HMAC ``challenge`` that the
   worker answers from its own ``REPRO_ENGINE_DIST_TOKEN``;
3. pull — ``request`` a unit, execute it, send ``result`` (or
   ``error`` with the exception message), repeat;
4. exit — on the coordinator's ``shutdown`` message (exit code 0), or
   when the connection drops mid-run (exit code 1).

A background thread heartbeats on the welcome's interval so the
coordinator can tell "still crunching a big unit" from "dead".  Units
are :class:`~repro.engine.spec.ExperimentSpec` dicts; execution goes
through the exact spec → runner → serial-backend path a local
``repro run`` uses, against a worker-lifetime
:class:`~repro.engine.cache.TraceCache` (memory tier per worker, disk
tier shared with the coordinator's trace stage when the directory is
reachable) and a worker-lifetime
:class:`~repro.engine.runner.FrameProvider` so repeated scenarios reuse
their frames.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
import traceback

from .. import faults, telemetry
from ..cache import TraceCache
from ..runner import FrameProvider
from ..settings import UNSET, resolve_dist_token
from .protocol import (
    ProtocolError,
    auth_digest,
    message,
    parse_address,
    recv_message,
    send_message,
)


def backoff_delays(rng, base: float = 0.1, cap: float = 2.0):
    """Yield exponential backoff delays with deterministic jitter.

    Delays double from ``base`` up to ``cap``, each multiplied by a
    jitter factor in [0.5, 1.0) drawn from ``rng`` — a
    :class:`random.Random` seeded per worker, so two workers hammering
    a restarted coordinator desynchronize, yet any single worker's
    retry schedule replays exactly.
    """
    attempt = 0
    while True:
        delay = min(cap, base * (2 ** attempt))
        yield delay * (0.5 + 0.5 * rng.random())
        if delay < cap:
            attempt += 1


def execute_unit(groups: list, cache: TraceCache,
                 providers: dict, timings: dict = None) -> dict:
    """Execute one unit's group specs; rows as JSON records per index.

    ``providers`` maps frame-provider registry names to live instances;
    the caller seeds it with the default provider and it is extended
    here on first use, so every provider — and its frame cache — lives
    for the worker's lifetime rather than being rebuilt (and its scene
    synthesis re-run) once per unit.

    ``timings``, when given, is filled with each group's wall seconds
    under the same string index keys as the returned rows — the
    per-unit statistics the worker ships back in its ``result``
    message for the coordinator's run manifest.

    Split out from the connection loop so tests can drive execution
    without a socket.  Import inside: the spec layer imports the runner
    and backends, which this module must not require at import time.
    """
    from ..registry import FRAME_PROVIDERS
    from ..spec import ExperimentSpec

    out = {}
    for entry in groups:
        started = time.monotonic()
        spec = ExperimentSpec.from_dict(entry["spec"])
        provider = providers.get(spec.frame_provider)
        if provider is None:
            provider = FRAME_PROVIDERS.create(spec.frame_provider)
            providers[spec.frame_provider] = provider
        runner = spec.build_runner(cache=cache, frame_provider=provider)
        table = runner.run(backend="serial")
        # Columnar streaming: records come straight off the table's
        # struct arrays, not through per-row SimResult views.
        out[str(entry["index"])] = table.to_records()
        if timings is not None:
            timings[str(entry["index"])] = time.monotonic() - started
    return out


#: Worker-side read timeout.  The coordinator guarantees a reply to
#: every request within its idle-reply window (~2 s), so a minute of
#: socket silence means the coordinator host vanished without FIN/RST —
#: exit 1 and let the supervisor restart the worker instead of hanging
#: forever.
READ_TIMEOUT_SECONDS = 60.0


class Worker:
    """One coordinator-serving worker loop.

    Args:
        address: ``(host, port)`` tuple or ``"HOST:PORT"`` string of the
            coordinator.
        worker_id: Stable name in coordinator logs and errors; defaults
            to ``hostname:pid``.
        cache_dir: Trace-artifact directory override.  Unset (the
            default) defers to the coordinator's welcome message, then
            to ``REPRO_TRACE_CACHE_DIR``; pass ``None`` explicitly for a
            memory-only cache.
        retry_seconds: How long to keep retrying the initial connection
            — this is what lets workers start before the coordinator.
            Retries back off exponentially with per-worker jitter.
        max_units: Exit cleanly after this many units (drain mode for
            tests and rolling restarts); ``None`` serves until shutdown.
        reconnect_seconds: After losing an *established* connection,
            keep re-dialling (same backoff + jitter) for this long
            before giving up — lets workers survive a coordinator
            restart, e.g. an interrupted run resumed with ``--resume``.
            The default 0 keeps the old exit-on-disconnect behaviour.
    """

    def __init__(self, address, worker_id: str = None, cache_dir=UNSET,
                 retry_seconds: float = 30.0, max_units: int = None,
                 reconnect_seconds: float = 0.0):
        self.address = (parse_address(address)
                        if isinstance(address, str) else tuple(address))
        self.worker_id = worker_id or (
            f"{socket.gethostname()}:{os.getpid()}"
        )
        self._cache_dir = cache_dir
        self.retry_seconds = float(retry_seconds)
        self.max_units = max_units
        self.reconnect_seconds = float(reconnect_seconds)
        self.units_done = 0
        self._send_lock = threading.Lock()
        self._stop_heartbeat = threading.Event()
        # String seeds hash deterministically in random.Random, so a
        # worker's whole retry schedule is a pure function of its id.
        self._rng = random.Random(f"repro-worker-{self.worker_id}")

    def _log(self, text: str) -> None:
        telemetry.log_line(f"[repro worker {self.worker_id}] {text}")

    # -- connection --------------------------------------------------------

    def _connect(self, budget: float = None):
        """Dial the coordinator with exponential backoff + jitter.

        Retries until ``budget`` seconds run out (``retry_seconds`` by
        default), so a worker may be launched before the coordinator —
        or, with a ``reconnect_seconds`` budget, outlive one.
        """
        budget = self.retry_seconds if budget is None else budget
        deadline = time.monotonic() + budget
        delays = backoff_delays(self._rng)
        while True:
            try:
                return socket.create_connection(self.address, timeout=5.0)
            except OSError as error:
                now = time.monotonic()
                if now >= deadline:
                    raise ConnectionError(
                        f"no coordinator at "
                        f"{self.address[0]}:{self.address[1]} after "
                        f"{budget:g}s: {error}"
                    ) from None
                time.sleep(min(next(delays), max(0.0, deadline - now)))

    def _send(self, sock, payload: dict) -> None:
        with self._send_lock:
            send_message(sock, payload)

    def _heartbeat_loop(self, sock, interval: float) -> None:
        while not self._stop_heartbeat.wait(interval):
            if faults.check("worker.heartbeat") == "stall_heartbeat":
                # Chaos harness: go silent without closing the socket —
                # the coordinator's reaper must notice on its own.
                self._log("heartbeat stalled (injected fault)")
                return
            try:
                self._send(sock, message("heartbeat"))
            except OSError:
                return

    def _run_unit(self, sock, unit_id, entries, cache, providers,
                  batch_rows: int) -> dict:
        """Execute one unit's groups and build its final ``result``.

        With ``batch_rows`` off (0, the default) this is the classic
        one-frame-per-unit path.  With it on, groups execute one at a
        time and completed rows are coalesced and flushed early as
        partial ``result`` frames (``done: false``) once the buffer
        reaches ``batch_rows`` rows, so a unit of many small groups
        streams back in a few frames instead of one giant one at the
        end.  The returned frame (``done: true``) carries whatever is
        still buffered; the coordinator merges staged frames per unit.
        """
        if batch_rows <= 0 or len(entries) <= 1:
            timings = {}
            groups = execute_unit(entries, cache, providers,
                                  timings=timings)
            return self._with_spans(message(
                "result", unit=unit_id, groups=groups, timings=timings,
            ))
        staged, timings, buffered = {}, {}, 0
        for position, entry in enumerate(entries):
            part = execute_unit([entry], cache, providers,
                                timings=timings)
            key = str(entry["index"])
            staged[key] = part[key]
            buffered += len(part[key])
            if buffered >= batch_rows and position + 1 < len(entries):
                self._send(sock, message(
                    "result", unit=unit_id, groups=staged,
                    timings={k: timings[k] for k in staged},
                    done=False,
                ))
                staged, buffered = {}, 0
        return self._with_spans(message(
            "result", unit=unit_id, groups=staged,
            timings={k: timings[k] for k in staged},
            done=True,
        ))

    def _with_spans(self, reply: dict) -> dict:
        """Attach the unit's traced span batch to its final ``result``.

        Only a tracer this worker activated itself is drained: an
        in-process loopback worker shares the coordinator's tracer
        (same process-wide global), where its spans already record
        directly — draining there would ship the coordinator's own
        events back as a worker batch.
        """
        if not getattr(self, "_ships_spans", False):
            return reply
        spans = telemetry.drain_spans()
        if spans:
            reply["spans"] = spans
        return reply

    # -- the loop ----------------------------------------------------------

    def run(self) -> int:
        """Serve the coordinator until shutdown; returns an exit code.

        With a ``reconnect_seconds`` budget, a lost *established*
        connection triggers a fresh dial-and-handshake loop instead of
        an exit — the coordinator (old or restarted) sees an ordinary
        new worker and the welcome re-announces the run's cache dir.
        """
        budget = self.retry_seconds
        while True:
            try:
                sock = self._connect(budget)
            except ConnectionError as error:
                self._log(str(error))
                return 1
            # Fresh event per connection: the previous connection's
            # teardown must not stop the next connection's heartbeat.
            self._stop_heartbeat = threading.Event()
            try:
                return self._serve(sock)
            except (ProtocolError, OSError) as error:
                self._log(f"connection to coordinator lost: {error}")
                if self.reconnect_seconds <= 0:
                    return 1
                self._log(
                    f"re-dialling for up to {self.reconnect_seconds:g}s"
                )
                budget = self.reconnect_seconds
            finally:
                self._stop_heartbeat.set()
                try:
                    sock.close()
                except OSError:
                    pass

    def _serve(self, sock) -> int:
        self._send(sock, message("hello", worker=self.worker_id,
                                 pid=os.getpid()))
        welcome = recv_message(sock)
        if welcome.get("type") == "challenge":
            token = resolve_dist_token()
            if token is None:
                self._log(
                    "coordinator requires authentication but no "
                    "REPRO_ENGINE_DIST_TOKEN is set"
                )
                return 1
            self._send(sock, message(
                "auth",
                digest=auth_digest(token, welcome.get("nonce") or ""),
            ))
            welcome = recv_message(sock)
        if welcome.get("type") != "welcome":
            self._log(f"unexpected handshake reply: {welcome.get('type')}")
            return 1
        sock.settimeout(READ_TIMEOUT_SECONDS)
        if self._cache_dir is UNSET:
            disk_dir = welcome.get("cache_dir")
            cache = (TraceCache(maxsize=16, disk_dir=disk_dir)
                     if disk_dir else TraceCache(maxsize=16))
        else:
            cache = TraceCache(maxsize=16, disk_dir=self._cache_dir)
        from ..spec import DEFAULT_FRAME_PROVIDER

        providers = {DEFAULT_FRAME_PROVIDER: FrameProvider()}
        batch_rows = int(welcome.get("batch_rows") or 0)
        interval = float(welcome.get("heartbeat_interval") or 1.0)
        # A traced coordinator asks the fleet to trace too: spans
        # recorded while a unit executes ride home on its final
        # `result` frame (see _with_spans) and merge into one timeline.
        owns_tracer = False
        if welcome.get("telemetry") and telemetry.active_tracer() is None:
            telemetry.activate(
                telemetry.SpanTracer(process=self.worker_id))
            owns_tracer = True
        self._ships_spans = owns_tracer
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, args=(sock, interval),
            name="repro-worker-heartbeat", daemon=True,
        )
        heartbeat.start()
        self._log(
            f"connected to {self.address[0]}:{self.address[1]} "
            f"(cache_dir={cache.disk_dir})"
        )
        try:
            while True:
                self._send(sock, message("request"))
                msg = recv_message(sock)
                kind = msg.get("type")
                if kind == "shutdown":
                    self._log(
                        f"shutdown after {self.units_done} unit(s)")
                    return 0
                if kind != "unit":
                    continue              # ignore unknown message types
                unit_id = msg.get("unit")
                # Chaos harness: kill_worker:unit=K exits hard
                # (os._exit, status 137) just before this process's
                # K-th unit runs.
                faults.check("worker.unit", unit=unit_id)
                try:
                    reply = self._run_unit(sock, unit_id,
                                           msg.get("groups") or [],
                                           cache, providers, batch_rows)
                except Exception as error:  # noqa: BLE001 — reported upstream
                    detail = traceback.format_exception_only(
                        type(error), error
                    )[-1].strip()
                    self._log(f"unit {unit_id} failed: {detail}")
                    reply = message("error", unit=unit_id, error=detail)
                self._send(sock, reply)
                self.units_done += 1
                if (self.max_units is not None
                        and self.units_done >= self.max_units):
                    # Announce the exit so the coordinator books it as
                    # a drain, not a worker failure.
                    self._send(sock, message("goodbye"))
                    self._log(
                        f"drained after {self.units_done} unit(s) "
                        f"(--max-units)"
                    )
                    return 0
        finally:
            self._ships_spans = False
            if owns_tracer:
                telemetry.activate(None)
