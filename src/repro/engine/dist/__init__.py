"""Distributed execution: a coordinator/worker backend over TCP.

* :mod:`repro.engine.dist.protocol`    — length-prefixed JSON framing
  and the message vocabulary both sides speak;
* :mod:`repro.engine.dist.coordinator` — :class:`Coordinator` (pull
  scheduling, heartbeats, per-unit timeouts, requeue with an attempt
  cap) and :class:`DistBackend`, registered as ``"dist"``;
* :mod:`repro.engine.dist.worker`      — :class:`Worker`, the process
  behind ``repro worker --connect HOST:PORT``.

Work units are serialized :class:`~repro.engine.spec.ExperimentSpec`
dicts; trace artifacts ship by content key through the shared
:class:`~repro.engine.cache.TraceCache` disk tier rather than over the
socket.  See the README's "Distributed execution" section for the
deployment story.
"""

from .coordinator import (
    Coordinator,
    DistBackend,
    DistRunError,
    DistStartTimeout,
    build_units,
    group_spec_dict,
)
from .protocol import (
    ConnectionClosed,
    MAX_MESSAGE_BYTES,
    ProtocolError,
    message,
    parse_address,
    recv_message,
    send_message,
)
from .worker import Worker, execute_unit

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ConnectionClosed",
    "Coordinator",
    "DistBackend",
    "DistRunError",
    "DistStartTimeout",
    "ProtocolError",
    "Worker",
    "build_units",
    "execute_unit",
    "group_spec_dict",
    "message",
    "parse_address",
    "recv_message",
    "send_message",
]
