"""Analytic GPU / CPU / Jetson platform models (paper Figs. 2(c), 9, 11).

The paper measures PyTorch + SpConv-library implementations on NVIDIA
A6000, RTX 2080Ti, Jetson Xavier NX (high-end comparison set) and Intel
Xeon 5115, Jetson Nano (low-end set).  Offline we model each platform
with a small number of calibrated parameters:

* an *effective* dense-conv throughput (well below datasheet peak: small
  batch, small feature maps, launch overheads);
* a hash-table mapping rate for the SpConv library's rule building — the
  bottleneck that keeps sparse variants from beating the dense baseline
  on these platforms (Fig. 2(c));
* memory bandwidth and irregular-access penalty for gather/scatter;
* a per-layer kernel-launch overhead;
* board/package power for energy.

Constants are calibrated to public spec sheets and the paper's relative
observations (e.g. "A6000 offers 2.5x peak throughput over the 2080Ti
but only achieves a 20 % speedup").  Absolute FPS is testbed-specific;
the *shape* — who wins and by what factor — is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sparsity import ModelTrace
from ..models.specs import LayerOp


@dataclass(frozen=True)
class PlatformSpec:
    """Calibrated performance/power parameters of one platform."""

    name: str
    effective_tops: float           # dense conv, achieved (not peak)
    sparse_gemm_factor: float       # sparse matmul efficiency vs dense
    mapping_rate_gcand_s: float     # hash-table candidates per second (1e9)
    mem_bandwidth_gbs: float
    irregular_penalty: float        # gather/scatter slowdown vs streaming
    launch_overhead_us: float       # per-kernel launch cost
    power_w: float


#: High-end comparison set.
A6000 = PlatformSpec("A6000", effective_tops=10.0, sparse_gemm_factor=0.55,
                     mapping_rate_gcand_s=0.30, mem_bandwidth_gbs=768.0,
                     irregular_penalty=4.0, launch_overhead_us=40.0,
                     power_w=300.0)
RTX_2080TI = PlatformSpec("2080Ti", effective_tops=8.3,
                          sparse_gemm_factor=0.55,
                          mapping_rate_gcand_s=0.26,
                          mem_bandwidth_gbs=616.0, irregular_penalty=4.0,
                          launch_overhead_us=45.0, power_w=250.0)
JETSON_NX = PlatformSpec("Jetson-NX", effective_tops=1.1,
                         sparse_gemm_factor=0.5,
                         mapping_rate_gcand_s=0.035,
                         mem_bandwidth_gbs=51.2, irregular_penalty=5.0,
                         launch_overhead_us=90.0, power_w=15.0)

#: Low-end comparison set.
XEON_5115 = PlatformSpec("Xeon-5115", effective_tops=0.7,
                         sparse_gemm_factor=0.8,
                         mapping_rate_gcand_s=0.045,
                         mem_bandwidth_gbs=115.0, irregular_penalty=2.0,
                         launch_overhead_us=5.0, power_w=85.0)
JETSON_NANO = PlatformSpec("Jetson-NN", effective_tops=0.22,
                           sparse_gemm_factor=0.5,
                           mapping_rate_gcand_s=0.008,
                           mem_bandwidth_gbs=25.6, irregular_penalty=5.0,
                           launch_overhead_us=140.0, power_w=10.0)

HIGH_END_PLATFORMS = (A6000, RTX_2080TI, JETSON_NX)
LOW_END_PLATFORMS = (XEON_5115, JETSON_NANO)


@dataclass
class PlatformResult:
    """Latency phases (milliseconds) and energy of one frame."""

    platform: str
    model_name: str
    conv_ms: float = 0.0
    mapping_ms: float = 0.0
    gather_scatter_ms: float = 0.0
    overhead_ms: float = 0.0
    power_w: float = 0.0

    @property
    def latency_ms(self) -> float:
        return (
            self.conv_ms + self.mapping_ms + self.gather_scatter_ms
            + self.overhead_ms
        )

    @property
    def fps(self) -> float:
        return 1e3 / self.latency_ms if self.latency_ms else 0.0

    @property
    def energy_mj(self) -> float:
        return self.power_w * self.latency_ms  # W * ms = mJ

    def phases(self) -> dict:
        return {
            "conv": self.conv_ms,
            "mapping": self.mapping_ms,
            "gather_scatter": self.gather_scatter_ms,
            "overhead": self.overhead_ms,
        }


class PlatformModel:
    """Run a traced model on an analytic platform."""

    def __init__(self, spec: PlatformSpec):
        self.spec = spec

    def run_trace(self, trace: ModelTrace) -> PlatformResult:
        """Latency/energy of one frame.

        Dense layers run through the vendor conv library; sparse layers
        run through the SpConv library: hash-table mapping (one candidate
        per active input per kernel offset) plus gather - sparse GEMM -
        scatter.
        """
        spec = self.spec
        result = PlatformResult(platform=spec.name,
                                model_name=trace.spec.name,
                                power_w=spec.power_w)
        for layer in trace.layers:
            ops = 2.0 * layer.sparse_macs
            is_sparse = layer.rules is not None
            if is_sparse:
                conv_s = ops / (spec.effective_tops
                                * spec.sparse_gemm_factor * 1e12)
                kernel_elems = len(layer.rules.pairs)
                candidates = layer.in_count * kernel_elems
                mapping_s = candidates / (spec.mapping_rate_gcand_s * 1e9)
                moved_bytes = (
                    layer.in_count * layer.spec.in_channels
                    + layer.out_count * layer.spec.out_channels
                )
                gather_s = (
                    moved_bytes * spec.irregular_penalty
                    / (spec.mem_bandwidth_gbs * 1e9)
                )
                result.conv_ms += conv_s * 1e3
                result.mapping_ms += mapping_s * 1e3
                result.gather_scatter_ms += gather_s * 1e3
                # SpConv launches several kernels per layer (rule build,
                # gather, gemm, scatter).
                result.overhead_ms += 4 * spec.launch_overhead_us * 1e-3
            else:
                conv_s = ops / (spec.effective_tops * 1e12)
                pixels = layer.out_shape[0] * layer.out_shape[1]
                moved_bytes = pixels * (
                    layer.spec.in_channels + layer.spec.out_channels
                )
                mem_s = moved_bytes / (spec.mem_bandwidth_gbs * 1e9)
                result.conv_ms += max(conv_s, mem_s) * 1e3
                result.overhead_ms += spec.launch_overhead_us * 1e-3
        return result
