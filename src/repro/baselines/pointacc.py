"""PointAcc performance simulator (paper Sec. IV-B4, Figs. 14-15).

The paper compares SPADE against PointAcc (MICRO'21) by building a
performance simulator "following [52]": a 64-element bitonic merge sorter
performs the input-output mapping, a direct-mapped cache fronts DRAM for
gather/scatter, and the MXU matches SPADE's (64x64, same memory
capacity).  Parameters are chosen to estimate PointAcc *optimistically*,
and no dataflow overlap is applied to either accelerator in this
comparison ("we did not apply dataflow optimization").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.sparsity import LayerTrace, ModelTrace
from ..core.config import SpadeConfig
from ..core.dataflow import schedule_dense_layer, schedule_sparse_layer
from ..core.rgu import RGUModel
from ..hw.bitonic import BitonicMergeRuleGen
from ..hw.cache import DirectMappedCache


@dataclass
class PointAccLayerResult:
    """Latency phases of one layer on the PointAcc-style simulator."""

    name: str
    mapping_cycles: int
    gather_scatter_cycles: int
    mxu_cycles: int
    dram_bytes: int

    @property
    def total_cycles(self) -> int:
        return self.mapping_cycles + self.gather_scatter_cycles + self.mxu_cycles


@dataclass
class PointAccModelResult:
    """Whole-frame outcome."""

    model_name: str
    layers: list = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def total_dram_bytes(self) -> int:
        return sum(layer.dram_bytes for layer in self.layers)

    def phase_totals(self) -> dict:
        return {
            "mapping": sum(l.mapping_cycles for l in self.layers),
            "gather_scatter": sum(l.gather_scatter_cycles for l in self.layers),
            "mxu": sum(l.mxu_cycles for l in self.layers),
        }


class PointAccSimulator:
    """Sort-based mapping + cached gather/scatter + SPADE-matched MXU.

    Args:
        config: MXU/memory form factor to match (HE by default).
        cache_line: Cache block size (64, per the paper's setup).
        miss_penalty: DRAM cycles charged per cache miss (optimistic
            open-page hit latency).
    """

    def __init__(self, config: SpadeConfig, cache_line: int = 64,
                 miss_penalty: int = 8, hit_time: int = 1):
        self.config = config
        self.cache_bytes = config.buf_in_bytes + config.buf_out_bytes
        self.cache_line = cache_line
        self.miss_penalty = miss_penalty
        self.hit_time = hit_time
        self._sorter = BitonicMergeRuleGen(merger_length=64)

    def _gather_scatter(self, trace: LayerTrace) -> tuple:
        """Tiled output-stationary gathers with boundary refetches.

        PointAcc processes outputs in cache-capacity tiles; within a tile,
        the contributing inputs of each kernel offset form a contiguous
        range (rule indices ascend), so they are fetched once and mostly
        hit afterwards.  Inputs straddling a tile boundary, however, have
        been evicted by the time the next tile needs them and are fetched
        again — the "multiple input fetches near active output tile
        boundaries" the paper's trace analysis reports.
        """
        rules = trace.rules
        spec = trace.spec
        in_bytes = max(spec.in_channels * self.config.act_bytes, 1)
        out_bytes = max(spec.out_channels * self.config.act_bytes, 1)
        lines_per_input = -(-in_bytes // self.cache_line)

        # Output tile size: half the cache holds psums, half gathered inputs.
        tile_outputs = max(1, (self.cache_bytes // 2) // max(out_bytes, 1))
        num_outputs = rules.num_outputs
        accesses = sum(len(pair) for pair in rules.pairs) + num_outputs
        fetched_lines = 0
        tile_start = 0
        while tile_start < num_outputs:
            tile_end = min(tile_start + tile_outputs, num_outputs)
            # Union input range needed by this output tile across offsets;
            # inputs in the overlap with the next tile's range have been
            # evicted in between and are fetched twice — the boundary
            # refetches the paper's trace analysis reports.
            lo, hi = None, None
            for pair in rules.pairs:
                if not len(pair):
                    continue
                left = np.searchsorted(pair.out_idx, tile_start, side="left")
                right = np.searchsorted(pair.out_idx, tile_end, side="left")
                if right > left:
                    first = int(pair.in_idx[left])
                    last = int(pair.in_idx[right - 1]) + 1
                    lo = first if lo is None else min(lo, first)
                    hi = last if hi is None else max(hi, last)
            if lo is not None:
                fetched_lines += (hi - lo) * lines_per_input
            tile_start = tile_end
        # Output scatter: each output line written back once.
        out_lines = -(-num_outputs * out_bytes // self.cache_line)
        fetched_lines += out_lines

        cycles = accesses * self.hit_time + fetched_lines * self.miss_penalty
        dram_bytes = fetched_lines * self.cache_line
        return cycles, dram_bytes

    def run_layer(self, trace: LayerTrace) -> PointAccLayerResult:
        spec = trace.spec
        if trace.rules is None:
            schedule = schedule_dense_layer(
                trace.out_shape[0] * trace.out_shape[1]
                if not spec.upsample
                else trace.in_shape[0] * trace.in_shape[1],
                spec.in_channels,
                spec.out_channels,
                self.config,
                kernel_size=spec.kernel_size,
                upsample_stride=spec.stride if spec.upsample else 1,
                out_width=trace.out_shape[1],
                name=spec.name,
            )
            return PointAccLayerResult(
                name=spec.name,
                mapping_cycles=0,
                gather_scatter_cycles=schedule.breakdown["gather_inp"]
                + schedule.breakdown["scatter_out"],
                mxu_cycles=schedule.breakdown["mxu"]
                + schedule.breakdown["load_wgt"],
                dram_bytes=schedule.dram_bytes,
            )
        mapping = self._sorter.run(trace.rules.num_inputs,
                                   trace.rules.kernel_size).cycles
        # dram_bytes counts activation traffic (the Fig. 14 comparison);
        # weight traffic is identical for both accelerators and omitted.
        gather_scatter, dram_bytes = self._gather_scatter(trace)
        schedule = schedule_sparse_layer(
            trace.rules,
            spec.in_channels,
            spec.out_channels,
            self.config,
            name=spec.name,
            optimize=False,
        )
        mxu = schedule.breakdown["mxu"] + schedule.breakdown["load_wgt"]
        return PointAccLayerResult(
            name=spec.name,
            mapping_cycles=mapping,
            gather_scatter_cycles=gather_scatter,
            mxu_cycles=mxu,
            dram_bytes=dram_bytes,
        )

    def run_trace(self, model_trace: ModelTrace) -> PointAccModelResult:
        result = PointAccModelResult(model_name=model_trace.spec.name)
        for layer_trace in model_trace.layers:
            result.layers.append(self.run_layer(layer_trace))
        return result


@dataclass
class SpadeNoOverlapResult:
    """SPADE measured in the same phase vocabulary, without overlap."""

    model_name: str
    mapping_cycles: int
    gather_scatter_cycles: int
    mxu_cycles: int
    dram_bytes: int

    @property
    def total_cycles(self) -> int:
        return self.mapping_cycles + self.gather_scatter_cycles + self.mxu_cycles

    def phase_totals(self) -> dict:
        return {
            "mapping": self.mapping_cycles,
            "gather_scatter": self.gather_scatter_cycles,
            "mxu": self.mxu_cycles,
        }


def spade_no_overlap(model_trace: ModelTrace,
                     config: SpadeConfig) -> SpadeNoOverlapResult:
    """SPADE latency for the Fig. 15 comparison (phases fully serialized).

    RuleGen via the streaming RGU, gather/scatter at full streaming
    bandwidth (the GSU's sequential access), MXU identical to PointAcc's.
    """
    rgu = RGUModel(config)
    mapping = 0
    gather_scatter = 0
    mxu = 0
    dram = 0
    for trace in model_trace.layers:
        spec = trace.spec
        if trace.rules is None:
            schedule = schedule_dense_layer(
                trace.out_shape[0] * trace.out_shape[1]
                if not spec.upsample
                else trace.in_shape[0] * trace.in_shape[1],
                spec.in_channels,
                spec.out_channels,
                config,
                kernel_size=spec.kernel_size,
                upsample_stride=spec.stride if spec.upsample else 1,
                out_width=trace.out_shape[1],
                name=spec.name,
            )
            gather_scatter += (
                schedule.breakdown["gather_inp"]
                + schedule.breakdown["scatter_out"]
            )
            mxu += schedule.breakdown["mxu"] + schedule.breakdown["load_wgt"]
            dram += schedule.dram_bytes
            continue
        mapping += rgu.cycles_for(trace.rules).cycles
        in_bytes = trace.rules.num_inputs * spec.in_channels * config.act_bytes
        out_bytes = trace.rules.num_outputs * spec.out_channels * config.act_bytes
        gather_scatter += -(-in_bytes // config.dram_bytes_per_cycle)
        gather_scatter += -(-out_bytes // config.dram_bytes_per_cycle)
        schedule = schedule_sparse_layer(
            trace.rules, spec.in_channels, spec.out_channels, config,
            name=spec.name, optimize=False,
        )
        mxu += schedule.breakdown["mxu"] + schedule.breakdown["load_wgt"]
        # Activation traffic only, matching the PointAcc accounting.
        dram += in_bytes + out_bytes
    return SpadeNoOverlapResult(
        model_name=model_trace.spec.name,
        mapping_cycles=mapping,
        gather_scatter_cycles=gather_scatter,
        mxu_cycles=mxu,
        dram_bytes=dram,
    )
