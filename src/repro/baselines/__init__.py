"""Comparison baselines: SpConv2D-Acc, PointAcc simulator, platforms."""

from .platforms import (
    A6000,
    HIGH_END_PLATFORMS,
    JETSON_NANO,
    JETSON_NX,
    LOW_END_PLATFORMS,
    RTX_2080TI,
    XEON_5115,
    PlatformModel,
    PlatformResult,
    PlatformSpec,
)
from .pointacc import (
    PointAccLayerResult,
    PointAccModelResult,
    PointAccSimulator,
    SpadeNoOverlapResult,
    spade_no_overlap,
)
from .spconv2d_acc import SpConv2DAccModel, SpConv2DAccReport

__all__ = [
    "A6000",
    "HIGH_END_PLATFORMS",
    "JETSON_NANO",
    "JETSON_NX",
    "LOW_END_PLATFORMS",
    "RTX_2080TI",
    "XEON_5115",
    "PlatformModel",
    "PlatformResult",
    "PlatformSpec",
    "PointAccLayerResult",
    "PointAccModelResult",
    "PointAccSimulator",
    "SpConv2DAccModel",
    "SpConv2DAccReport",
    "SpadeNoOverlapResult",
    "spade_no_overlap",
]
