"""Conventional sparse-Conv2D accelerator baseline (paper Fig. 2(a,b)).

SpConv2D-Acc represents SCNN-style accelerators built for *element-wise*
activation sparsity: they im2col the convolution, condense nonzero
elements, multiply in an output-stationary outer-product fashion and
scatter partial sums into a banked output buffer.

Vector sparsity breaks this design in two ways the model captures:

* **Underutilization** — condensing whole-pillar zeros leaves diagonal
  patterns; the condensed column seldom fills the PE rows, so entire rows
  idle.  Measured here as performed MACs over (rows x occupied cycles).
* **Bank conflicts** — each PE accumulates psums of *different* output
  coordinates; coordinates land in buffer banks irregularly, and two
  simultaneous updates to one bank stall.  Measured from the real rule
  streams of the frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.rulegen import Rules


@dataclass
class SpConv2DAccReport:
    """Utilization / conflict outcome of one layer (or aggregate)."""

    utilization: float
    bank_conflict_rate: float
    cycles: int
    macs: int


class SpConv2DAccModel:
    """Outer-product element-sparse accelerator running vector-sparse input.

    Args:
        pe_rows: Condensing window (nonzero elements consumed per cycle).
        pe_cols: Output lanes updated per cycle.
        num_banks: Output psum buffer banks.
    """

    def __init__(self, pe_rows: int = 16, pe_cols: int = 16,
                 num_banks: int = 16):
        self.pe_rows = pe_rows
        self.pe_cols = pe_cols
        self.num_banks = num_banks

    def run_rules(self, rules: Rules, in_channels: int,
                  out_channels: int) -> SpConv2DAccReport:
        """Simulate one sparse layer from its rule stream."""
        contributions = np.zeros(rules.num_outputs, dtype=np.int64)
        for pair in rules.pairs:
            if len(pair):
                np.add.at(contributions, pair.out_idx, 1)
        active_outputs = contributions[contributions > 0]
        if len(active_outputs) == 0:
            return SpConv2DAccReport(0.0, 0.0, 0, 0)

        # Utilization: each output needs ceil(k_o / pe_rows) condensed
        # passes; the last pass of each output is partially filled.
        passes = np.ceil(active_outputs / self.pe_rows).astype(np.int64)
        occupied_cycles = int(passes.sum())
        performed = int(active_outputs.sum())
        utilization = performed / (occupied_cycles * self.pe_rows)

        # Bank conflicts: the scatter stage writes pe_cols psum vectors per
        # cycle; the outputs processed concurrently are consecutive in the
        # condensed stream, and their buffer bank is coord % num_banks.
        out_banks = (
            rules.out_coords[:, 0].astype(np.int64) * rules.out_shape[1]
            + rules.out_coords[:, 1]
        ) % self.num_banks
        active_idx = np.nonzero(contributions > 0)[0]
        stream = out_banks[active_idx]
        usable = len(stream) - (len(stream) % self.pe_cols)
        conflicts = 0
        groups = 0
        if usable:
            grouped = stream[:usable].reshape(-1, self.pe_cols)
            groups = len(grouped)
            for row in grouped:
                counts = np.bincount(row, minlength=self.num_banks)
                conflicts += int(counts.max()) - 1
        conflict_rate = conflicts / groups if groups else 0.0

        channel_factor = in_channels * out_channels
        stall_cycles = int(conflicts * (in_channels / self.pe_cols))
        cycles = occupied_cycles * max(1, channel_factor // (
            self.pe_rows * self.pe_cols)) + stall_cycles
        return SpConv2DAccReport(
            utilization=utilization,
            bank_conflict_rate=conflict_rate,
            cycles=cycles,
            macs=performed * channel_factor,
        )

    def sweep_sparsity(self, grid_shape: tuple, sparsity_levels,
                       seed: int = 0) -> list:
        """Fig. 2(b): utilization / conflicts across computation sparsity.

        Random pillar patterns at each density are run through a 3x3
        dilating convolution's rule stream.
        """
        from ..sparse.coords import unflatten
        from ..sparse.rulegen import ConvType, build_rules

        rng = np.random.default_rng(seed)
        total = grid_shape[0] * grid_shape[1]
        results = []
        for sparsity in sparsity_levels:
            active = max(4, int(round(total * (1.0 - sparsity))))
            flat = np.sort(rng.choice(total, active, replace=False))
            coords = unflatten(flat, grid_shape)
            rules = build_rules(coords, grid_shape, ConvType.SPCONV)
            report = self.run_rules(rules, 64, 64)
            results.append((sparsity, report))
        return results
