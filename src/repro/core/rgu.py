"""Rule Generation Unit: streaming mapping generation (paper Sec. III-B).

Two things live here:

* :func:`streaming_rulegen` — a faithful functional implementation of the
  RGU's three pipeline stages (alignment, row merge, column-wise
  dilation) operating on CPR-encoded coordinates.  It produces bit-exact
  the same rules as the vectorized reference
  (:func:`repro.sparse.rulegen.build_rules`), which the test suite
  asserts; its existence demonstrates the O(P) streaming algorithm the
  hardware implements.
* :class:`RGUModel` — the cycle/energy model: the pipelined RGU emits one
  rule entry per cycle after fill, so mapping time is linear in the rule
  count (the property behind the Fig. 5(b) comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.rulegen import ConvType, RulePairs, Rules
from .config import SpadeConfig


def _row_slices(coords: np.ndarray, num_rows: int) -> list:
    """Start/end index of each row's coordinate run (CPR property)."""
    boundaries = np.searchsorted(coords[:, 0], np.arange(num_rows + 1))
    return [(boundaries[r], boundaries[r + 1]) for r in range(num_rows)]


def streaming_rulegen(in_coords: np.ndarray, in_shape: tuple) -> Rules:
    """Generate SpConv (3x3, stride 1) rules with the RGU's streaming passes.

    The three stages per output row ``r``:

    1. *Alignment*: the FIFO chain exposes input rows ``r-1, r, r+1``,
       associated with weight rows ``W-, W0, W+``.
    2. *Row merge*: the three sorted column lists are merged; each merged
       column remembers which of the three rows contributed.
    3. *Column-wise dilation*: every contribution dilates +/-1 column,
       emitting (input, weight, output) rule entries; output columns are
       the +/-1 dilation of the merged columns, visited in ascending
       order so output indices are assigned monotonically.
    """
    in_coords = np.asarray(in_coords, dtype=np.int32)
    height, width = in_shape
    num_offsets = 9
    pair_in = [[] for _ in range(num_offsets)]
    pair_out = [[] for _ in range(num_offsets)]
    out_rows = []
    out_cols = []

    slices = _row_slices(in_coords, height)
    out_base = 0
    for out_row in range(height):
        # Stage 1: alignment — gather the three contributing input rows.
        row_inputs = []  # (weight_row_index 0/1/2, cols, input_indices)
        for weight_row, delta in enumerate((-1, 0, 1)):
            source = out_row + delta
            if 0 <= source < height:
                start, end = slices[source]
                if end > start:
                    row_inputs.append(
                        (weight_row,
                         in_coords[start:end, 1],
                         np.arange(start, end, dtype=np.int64))
                    )
        if not row_inputs:
            continue
        # Stage 2: row merge — merged active columns across the window.
        merged_cols = np.unique(np.concatenate([cols for _, cols, _ in row_inputs]))
        # Stage 3: column-wise dilation — active output columns for SpConv.
        dilated = np.unique(
            np.concatenate([merged_cols - 1, merged_cols, merged_cols + 1])
        )
        dilated = dilated[(dilated >= 0) & (dilated < width)]
        for weight_row, cols, input_indices in row_inputs:
            for weight_col, delta in enumerate((-1, 0, 1)):
                # Input column c feeds output column c - delta... with
                # O(r, co) += I(r+dr, co+dc) W(dr, dc): co = c - dc.
                target = cols - delta
                valid = (target >= 0) & (target < width)
                position = np.searchsorted(dilated, target[valid])
                offset_index = weight_row * 3 + weight_col
                pair_in[offset_index].append(input_indices[valid])
                pair_out[offset_index].append(out_base + position)
        out_rows.append(np.full(len(dilated), out_row, dtype=np.int32))
        out_cols.append(dilated.astype(np.int32))
        out_base += len(dilated)

    if out_rows:
        out_coords = np.stack(
            [np.concatenate(out_rows), np.concatenate(out_cols)], axis=1
        )
    else:
        out_coords = np.zeros((0, 2), dtype=np.int32)

    rules = Rules(
        conv_type=ConvType.SPCONV,
        kernel_size=3,
        stride=1,
        in_shape=in_shape,
        out_shape=in_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )
    for offset_index in range(num_offsets):
        if pair_in[offset_index]:
            rules.pairs.append(
                RulePairs(
                    np.concatenate(pair_in[offset_index]),
                    np.concatenate(pair_out[offset_index]),
                )
            )
        else:
            empty = np.zeros(0, dtype=np.int64)
            rules.pairs.append(RulePairs(empty, empty))
    return rules


@dataclass
class RGUCycleReport:
    """Cycle/energy estimate for generating one layer's rules."""

    rule_entries: int
    cycles: int
    energy_pj: float


class RGUModel:
    """RGU timing: one rule entry per cycle after pipeline fill.

    The streaming FIFO chain also pays one cycle per active input (to
    shift it through the alignment stage) and a small per-row turnaround,
    but the emission stage dominates, keeping the total linear in P.
    """

    PIPELINE_FILL = 8
    ROW_TURNAROUND = 1

    def __init__(self, config: SpadeConfig = None):
        self.config = config or SpadeConfig()

    def cycles_for(self, rules: Rules) -> RGUCycleReport:
        """Mapping cycles and energy for one sparse layer."""
        active_rows = (
            len(np.unique(rules.in_coords[:, 0])) if rules.num_inputs else 0
        )
        entries = rules.total_pairs
        cycles = (
            max(entries, rules.num_inputs)
            + active_rows * self.ROW_TURNAROUND
            + self.PIPELINE_FILL
        )
        energy = entries * self.config.rgu_energy_per_rule_pj
        return RGUCycleReport(rule_entries=entries, cycles=cycles,
                              energy_pj=energy)

    def cycles_for_count(self, num_inputs: int, kernel_size: int = 3) -> int:
        """Upper-bound mapping cycles from the input count alone.

        Used by the standalone Fig. 5(b) comparison where only pillar
        counts are swept: assumes the worst case of every offset
        producing a rule entry (dense-neighbourhood dilation).
        """
        entries = num_inputs * kernel_size * kernel_size
        return entries + self.PIPELINE_FILL
