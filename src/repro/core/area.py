"""Area model at 32 nm (paper Fig. 10(a,b)).

The paper synthesizes SPADE with Synopsys DC at SAED 32 nm; this model
reproduces the area *accounting*: PEs, activation/weight SRAMs, and the
sparse-management additions (RGU, GSU/ATM, pruning SFU, rule buffers)
that Fig. 10(b) shows occupy only ~4% of SPADE.HE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.sram import SRAMModel
from .config import SpadeConfig

#: One int8 MAC PE with weight register and pipeline latch, mm^2 @ 32 nm.
PE_AREA_MM2 = 6.0e-4
#: RGU: FIFO chain, merge comparators, dilation adders.
RGU_AREA_MM2 = 0.045
#: GSU: active tile manager, address generators, gather/scatter engines.
GSU_AREA_MM2 = 0.040
#: Pruning SFU: magnitude compare + compaction.
SFU_AREA_MM2 = 0.015
#: Rule buffer: double-buffered per-tile rules (~9 * T_a entries, 6 B each).
RULE_BUFFER_BYTES = 2 * 9 * 512 * 6
#: Control / NoC overhead fraction on top of all blocks.
CONTROL_OVERHEAD = 0.12


@dataclass
class AreaBreakdown:
    """Component areas in mm^2."""

    components: dict = field(default_factory=dict)

    @property
    def total_mm2(self) -> float:
        return sum(self.components.values()) * (1.0 + CONTROL_OVERHEAD)

    def fraction(self, *names) -> float:
        """Fraction of total area taken by the named components."""
        selected = sum(self.components.get(name, 0.0) for name in names)
        return selected * (1.0 + CONTROL_OVERHEAD) / self.total_mm2


def accelerator_area(config: SpadeConfig, sparse_support: bool = True) -> AreaBreakdown:
    """Area of a SPADE instance (or DenseAcc when ``sparse_support=False``)."""
    breakdown = AreaBreakdown()
    breakdown.components["pe_array"] = (
        config.pe_rows * config.pe_cols * PE_AREA_MM2
    )
    breakdown.components["buf_in"] = SRAMModel(config.buf_in_bytes).area_mm2
    breakdown.components["buf_out"] = SRAMModel(config.buf_out_bytes).area_mm2
    breakdown.components["buf_wgt"] = SRAMModel(config.buf_wgt_bytes).area_mm2
    if sparse_support:
        breakdown.components["rgu"] = RGU_AREA_MM2
        breakdown.components["gsu"] = GSU_AREA_MM2
        breakdown.components["sfu"] = SFU_AREA_MM2
        breakdown.components["rule_buffer"] = SRAMModel(RULE_BUFFER_BYTES).area_mm2
    return breakdown


def sram_kilobytes(config: SpadeConfig, sparse_support: bool = True) -> float:
    """Total on-chip SRAM capacity in KB."""
    total = config.buf_in_bytes + config.buf_out_bytes + config.buf_wgt_bytes
    if sparse_support:
        total += RULE_BUFFER_BYTES
    return total / 1024.0


def pointacc_like_area(config: SpadeConfig) -> AreaBreakdown:
    """Area of a PointAcc-style accelerator matched in MXU form factor.

    PointAcc replaces SPADE's RGU/GSU with a 64-wide bitonic merge sorter
    and a much larger cache hierarchy (its mapping unit requires sorting
    storage and the gather/scatter path needs a sizeable cache to survive
    irregular accesses).
    """
    breakdown = AreaBreakdown()
    breakdown.components["pe_array"] = (
        config.pe_rows * config.pe_cols * PE_AREA_MM2
    )
    cache_bytes = 768 * 1024
    breakdown.components["cache"] = SRAMModel(cache_bytes).area_mm2
    breakdown.components["buf_wgt"] = SRAMModel(config.buf_wgt_bytes).area_mm2
    breakdown.components["merge_sorter"] = 0.30
    breakdown.components["mapping_buffers"] = SRAMModel(128 * 1024).area_mm2
    return breakdown
