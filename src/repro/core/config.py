"""SPADE accelerator configurations (high-end and low-end).

The paper tapes out two configurations at 32 nm / 1 GHz:

* **HE** — 64 x 64 systolic MXU (8 TOPS counting 2 ops per MAC), compared
  against server GPUs and Jetson Xavier NX;
* **LE** — 16 x 16 systolic MXU (512 GOPS), compared against a Xeon CPU
  and Jetson Nano.

Both use 32 KB input/output activation buffers (the BUFin size quoted in
the Fig. 6(c) methodology), a weight buffer, and the RGU rule buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.dram import DRAMConfig


@dataclass(frozen=True)
class SpadeConfig:
    """Microarchitecture parameters of one SPADE instance.

    Attributes:
        name: Configuration tag ("HE" / "LE").
        pe_rows: Systolic array rows (input-channel dimension, Tc).
        pe_cols: Systolic array columns (output-channel dimension, Tm).
        clock_ghz: Core clock.
        buf_in_bytes: Input activation buffer (gathered pillar vectors).
        buf_out_bytes: Output partial-sum buffer (int32 accumulators).
        buf_wgt_bytes: Weight buffer capacity.
        rule_buf_entries: Rule buffer capacity (entries per kernel offset).
        dram_bytes_per_cycle: Sustained DRAM bandwidth per core cycle.
        act_bytes: Activation precision (int8).
        wgt_bytes: Weight precision (int8).
        psum_bytes: Accumulator precision (int32).
        mac_energy_pj: Energy of one int8 MAC at 32 nm.
        rgu_energy_per_rule_pj: RGU energy per generated rule entry.
        pruning_energy_per_pillar_pj: SFU pruning energy per output pillar.
    """

    name: str = "HE"
    pe_rows: int = 64
    pe_cols: int = 64
    clock_ghz: float = 1.0
    buf_in_bytes: int = 32 * 1024
    buf_out_bytes: int = 256 * 1024
    buf_wgt_bytes: int = 256 * 1024
    rule_buf_entries: int = 4096
    dram_bytes_per_cycle: int = 32
    act_bytes: int = 1
    wgt_bytes: int = 1
    psum_bytes: int = 4
    mac_energy_pj: float = 0.12
    rgu_energy_per_rule_pj: float = 0.35
    pruning_energy_per_pillar_pj: float = 0.8

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def peak_tops(self) -> float:
        """Peak throughput counting 2 ops (multiply + add) per MAC."""
        return 2 * self.peak_macs_per_cycle * self.clock_ghz / 1000.0

    def buf_in_capacity_pillars(self, channels: int) -> int:
        """Active input pillars (T_a upper bound) fitting in BUFin.

        BUFin holds the current input-channel tile (up to ``pe_rows``
        channels per pillar); wider layers stream channel tiles in turn.
        """
        bytes_per_pillar = max(min(channels, self.pe_rows) * self.act_bytes, 1)
        return max(1, self.buf_in_bytes // bytes_per_pillar)

    def buf_out_capacity_pillars(self, channels: int) -> int:
        """Output pillars fitting in BUFout as int32 partial sums.

        BUFout holds the current output-channel tile (up to ``pe_cols``
        accumulators per pillar).
        """
        bytes_per_pillar = max(
            min(channels, self.pe_cols) * self.psum_bytes, 1
        )
        return max(1, self.buf_out_bytes // bytes_per_pillar)


#: High-end configuration: 64x64 MXU, 8 TOPS.
SPADE_HE = SpadeConfig(name="HE", pe_rows=64, pe_cols=64,
                       dram_bytes_per_cycle=64)

#: Low-end configuration: 16x16 MXU, 512 GOPS.
SPADE_LE = SpadeConfig(
    name="LE",
    pe_rows=16,
    pe_cols=16,
    buf_in_bytes=16 * 1024,
    buf_out_bytes=64 * 1024,
    buf_wgt_bytes=64 * 1024,
    dram_bytes_per_cycle=16,
)


def dram_config_for(config: SpadeConfig) -> DRAMConfig:
    """DRAM device paired with a SPADE instance."""
    return DRAMConfig()
