"""SPADE accelerator core: RGU, GSU, MXU dataflow, energy, area."""

from .accelerator import LayerResult, ModelResult, SpadeAccelerator
from .area import (
    AreaBreakdown,
    accelerator_area,
    pointacc_like_area,
    sram_kilobytes,
)
from .config import SPADE_HE, SPADE_LE, SpadeConfig
from .dataflow import (
    INSTRUCTIONS,
    LayerSchedule,
    schedule_dense_layer,
    schedule_sparse_layer,
)
from .dense import DenseAccelerator
from .energy import EnergyBreakdown, EnergyModel
from .mxu import SystolicArray, SystolicRunResult, pipeline_cycles
from .gsu import GSUTraffic, TilePlan, TileSchedule, layer_traffic, plan_tiles
from .rgu import RGUCycleReport, RGUModel, streaming_rulegen

__all__ = [
    "INSTRUCTIONS",
    "SPADE_HE",
    "SPADE_LE",
    "AreaBreakdown",
    "DenseAccelerator",
    "EnergyBreakdown",
    "EnergyModel",
    "GSUTraffic",
    "LayerResult",
    "LayerSchedule",
    "ModelResult",
    "RGUCycleReport",
    "RGUModel",
    "SpadeAccelerator",
    "SpadeConfig",
    "TilePlan",
    "TileSchedule",
    "accelerator_area",
    "layer_traffic",
    "plan_tiles",
    "pointacc_like_area",
    "schedule_dense_layer",
    "schedule_sparse_layer",
    "sram_kilobytes",
    "streaming_rulegen",
    "SystolicArray",
    "SystolicRunResult",
    "pipeline_cycles",
]
