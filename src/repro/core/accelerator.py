"""Network-level SPADE simulation: schedule every layer of a traced model.

:class:`SpadeAccelerator` consumes a :class:`~repro.analysis.sparsity.ModelTrace`
(per-layer rules and counts from one frame) and produces per-layer and
model-level cycle counts, utilization, DRAM traffic and energy.  The
DenseAcc baseline lives in :mod:`repro.core.dense`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace

from ..analysis.sparsity import LayerTrace, ModelTrace
from ..models.specs import LayerOp
from .config import SpadeConfig
from .dataflow import LayerSchedule, schedule_dense_layer, schedule_sparse_layer
from .energy import EnergyBreakdown, EnergyModel


@dataclass
class LayerResult:
    """Schedule + energy of one executed layer."""

    trace: LayerTrace
    schedule: LayerSchedule
    energy: EnergyBreakdown


@dataclass
class ModelResult:
    """Aggregate of one frame's execution on one accelerator."""

    model_name: str
    accelerator: str
    layers: list = field(default_factory=list)
    clock_ghz: float = 1.0
    _aggregates: dict = field(default_factory=dict, repr=False, compare=False)

    def _aggregate(self, key, compute):
        """Memoized per-model aggregate, recomputed if layers were added.

        Aggregates are accessed many times per result (every metric of
        the unified schema, every table row), so they are computed once
        and invalidated by layer count — layers are append-only.
        """
        count = len(self.layers)
        cached = self._aggregates.get(key)
        if cached is None or cached[0] != count:
            cached = (count, compute())
            self._aggregates[key] = cached
        return cached[1]

    @property
    def total_cycles(self) -> int:
        return self._aggregate(
            "cycles",
            lambda: sum(layer.schedule.total_cycles for layer in self.layers),
        )

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9) * 1e3

    @property
    def fps(self) -> float:
        return 1e3 / self.latency_ms if self.total_cycles else 0.0

    @property
    def total_macs(self) -> int:
        return self._aggregate(
            "macs", lambda: sum(layer.schedule.macs for layer in self.layers)
        )

    @property
    def total_dram_bytes(self) -> int:
        return self._aggregate(
            "dram",
            lambda: sum(layer.schedule.dram_bytes for layer in self.layers),
        )

    def _sum_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for layer in self.layers:
            total.add(layer.energy)
        return total

    @property
    def energy(self) -> EnergyBreakdown:
        # Copy so callers mutating the returned breakdown (e.g. via
        # ``add``) cannot corrupt the cache.
        return replace(self._aggregate("energy", self._sum_energy))

    @property
    def energy_mj(self) -> float:
        return self.energy.total_mj

    def utilization(self, config: SpadeConfig) -> float:
        cycles = self.total_cycles
        if cycles == 0:
            return 0.0
        return self.total_macs / (config.peak_macs_per_cycle * cycles)

    def breakdown(self) -> dict:
        """Summed instruction breakdown across layers (cycles)."""
        def compute():
            total = Counter()
            for layer in self.layers:
                total.update(layer.schedule.breakdown)
            return dict(total)

        return dict(self._aggregate("breakdown", compute))


class SpadeAccelerator:
    """The SPADE cycle simulator.

    Args:
        config: HE or LE instance.
        optimize: Enable weight grouping / ganged scatter (Fig. 8); turn
            off to reproduce the "w/o optimization" baselines of
            Fig. 11(d) and the PointAcc comparison setup of Sec. IV-B4.
    """

    def __init__(self, config: SpadeConfig, optimize: bool = True):
        self.config = config
        self.optimize = optimize
        self.energy_model = EnergyModel(config)

    def run_layer(self, trace: LayerTrace) -> LayerResult:
        """Schedule one traced layer."""
        spec = trace.spec
        if trace.rules is not None:
            schedule = schedule_sparse_layer(
                trace.rules,
                spec.in_channels,
                spec.out_channels,
                self.config,
                name=spec.name,
                prune=spec.prune_keep is not None,
                optimize=self.optimize,
            )
        else:
            num_pixels = (
                trace.in_shape[0] * trace.in_shape[1]
                if spec.upsample
                else trace.out_shape[0] * trace.out_shape[1]
            )
            schedule = schedule_dense_layer(
                num_pixels,
                spec.in_channels,
                spec.out_channels,
                self.config,
                kernel_size=spec.kernel_size,
                upsample_stride=spec.stride if spec.upsample else 1,
                out_width=trace.out_shape[1],
                name=spec.name,
            )
        energy = self.energy_model.layer_energy(
            schedule, spec.in_channels, spec.out_channels
        )
        return LayerResult(trace=trace, schedule=schedule, energy=energy)

    def run_trace(self, model_trace: ModelTrace) -> ModelResult:
        """Execute a full traced model frame."""
        result = ModelResult(
            model_name=model_trace.spec.name,
            accelerator=f"SPADE.{self.config.name}"
            + ("" if self.optimize else " (no dataflow opt)"),
            clock_ghz=self.config.clock_ghz,
        )
        for layer_trace in model_trace.layers:
            result.layers.append(self.run_layer(layer_trace))
        return result
