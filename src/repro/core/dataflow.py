"""SPADE dataflow: the 7-instruction schedule and its timing model.

The SPADE dataflow (paper Sec. III-D) is built from seven instructions:
``RuleGen``, ``Gather_inp``, ``Gather_wgt``, ``Load_wgt``, ``MXU``,
``Copy_psum`` and ``Scatter_out``.  RuleGen/gathers/scatter are
double-buffered and hide behind MXU computation after the first tile;
``Load_wgt`` (copying weights into PE register files) and ``Copy_psum``
(carrying boundary partial sums between consecutive tiles) cannot be
hidden and show up as PE-array stalls.

The loop nest (Fig. 7(a)): outer, output-stationary over active-pillar
tiles ``T_a`` (BUFout holds the tile's full-depth int32 partial sums);
inner, weight-stationary over output-channel tiles ``T_m``, input-channel
tiles ``T_c`` and kernel offsets, each pass streaming the tile's rule
entries through the PE array at one pillar vector per cycle.

Two dataflow optimizations (Fig. 8) are modeled:

* **weight grouping** (SpStConv): gathering inputs by stride-parity class
  lets every weight load see a full tile of usable inputs, cutting weight
  -load events by ``stride^2``;
* **ganged scatter** (SpDeconv): scattering each kernel offset's outputs
  immediately (no accumulation exists across offsets) frees BUFout from
  holding the ``stride^2``-times-larger output window, restoring a full
  ``T_a``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.rulegen import ConvType, Rules
from .config import SpadeConfig
from .gsu import plan_tiles
from .rgu import RGUModel

#: Instruction names used in breakdowns (paper Fig. 7 vocabulary).
INSTRUCTIONS = (
    "rulegen",
    "gather_inp",
    "gather_wgt",
    "load_wgt",
    "mxu",
    "copy_psum",
    "scatter_out",
)


@dataclass
class LayerSchedule:
    """Cycle-level outcome of scheduling one layer.

    ``breakdown`` holds the *non-hidden* cycle contribution of each
    instruction (hidden work costs nothing); ``mxu`` is the PE-array busy
    time.  ``total_cycles`` is their sum.
    """

    name: str
    conv_type: str
    macs: int
    num_tiles: int
    breakdown: dict = field(default_factory=dict)
    dram_bytes: int = 0
    rule_entries: int = 0
    pruned_outputs: int = 0
    timeline: list = field(default_factory=list)
    weight_grouping: bool = False
    ganged_scatter: bool = False
    effective_ta: float = 0.0

    @property
    def total_cycles(self) -> int:
        return int(sum(self.breakdown.values()))

    @property
    def mxu_cycles(self) -> int:
        return int(self.breakdown.get("mxu", 0))

    def utilization(self, config: SpadeConfig) -> float:
        """Fraction of peak MACs actually performed."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.macs / (config.peak_macs_per_cycle * total)

    @property
    def overhead_fraction(self) -> float:
        """Fraction of time the PE array is stalled (Fig. 8(c) metric)."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return 1.0 - self.mxu_cycles / total


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _group_factor(conv_type: ConvType, stride: int, weight_grouping: bool,
                  kernel_size: int) -> int:
    """Weight-load reduction factor from stride-parity weight grouping."""
    if not weight_grouping or conv_type is not ConvType.STRIDED:
        return 1
    # stride^2 parity classes share inputs ({0,2,6,8},{1,7},{3,5},{4} for
    # a 3x3 / stride-2 kernel).
    return min(stride * stride, kernel_size * kernel_size)


def schedule_sparse_layer(
    rules: Rules,
    in_channels: int,
    out_channels: int,
    config: SpadeConfig,
    name: str = "",
    prune: bool = False,
    optimize: bool = True,
) -> LayerSchedule:
    """Schedule one sparse convolution on SPADE.

    Args:
        rules: Precomputed layer mapping.
        in_channels / out_channels: Feature depths C and M.
        config: Accelerator instance.
        name: Layer label for reports.
        prune: Whether the SFU prunes outputs (SpConv-P layers).
        optimize: Enable weight grouping / ganged scatter / adaptive T_a.

    Returns:
        A :class:`LayerSchedule` with the instruction breakdown.
    """
    pe_r, pe_c = config.pe_rows, config.pe_cols
    n_c = _ceil_div(max(in_channels, 1), pe_r)
    n_m = _ceil_div(max(out_channels, 1), pe_c)
    fill = pe_r + pe_c

    schedule = LayerSchedule(
        name=name,
        conv_type=rules.conv_type.value,
        macs=rules.macs(in_channels, out_channels),
        num_tiles=0,
        weight_grouping=(
            optimize and rules.conv_type is ConvType.STRIDED and rules.stride > 1
        ),
        ganged_scatter=(optimize and rules.conv_type is ConvType.DECONV),
    )
    if rules.num_inputs == 0:
        schedule.breakdown = {key: 0 for key in INSTRUCTIONS}
        return schedule

    ta_cap = config.buf_in_capacity_pillars(in_channels)
    to_cap = config.buf_out_capacity_pillars(out_channels)
    if schedule.ganged_scatter:
        # Outputs leave the buffer per offset; the window constraint
        # reduces to the per-offset output count (= tile input count).
        to_cap = max(to_cap, ta_cap * rules.stride * rules.stride)
    tiling = plan_tiles(rules, ta_cap, to_cap)
    schedule.num_tiles = tiling.num_tiles
    schedule.effective_ta = rules.num_inputs / max(tiling.num_tiles, 1)

    group = _group_factor(rules.conv_type, rules.stride,
                          schedule.weight_grouping, rules.kernel_size)
    rgu = RGUModel(config)
    bpc = config.dram_bytes_per_cycle

    weight_tile_bytes = pe_r * pe_c * config.wgt_bytes
    layer_weight_bytes = (
        len(rules.pairs) * in_channels * out_channels * config.wgt_bytes
    )
    weights_fit = layer_weight_bytes <= config.buf_wgt_bytes

    mxu_busy = 0
    load_wgt = 0
    copy_psum = 0
    stall_gather = 0
    stall_scatter = 0
    stall_rulegen = 0
    gather_wgt_stall = 0
    prev_mxu = 0
    total_pairs = 0

    for index, tile in enumerate(tiling.tiles):
        nonzero_offsets = sum(1 for count in tile.pairs_per_offset if count)
        passes = nonzero_offsets * n_c * n_m
        # Passes stream back-to-back (weights preloaded into shadow
        # registers), so the systolic fill/drain is paid once per tile.
        tile_mxu = tile.total_pairs * n_c * n_m + fill
        tile_load = _ceil_div(passes, group) * pe_r
        tile_copy = tile.overlap_with_prev * n_m
        tile_gather = _ceil_div(tile.num_inputs * in_channels
                                * config.act_bytes, bpc)
        tile_scatter = _ceil_div(tile.num_outputs * out_channels
                                 * config.act_bytes, bpc)
        tile_rulegen = tile.total_pairs + RGUModel.PIPELINE_FILL
        tile_gather_wgt = 0
        if not weights_fit:
            tile_gather_wgt = _ceil_div(
                _ceil_div(passes, group) * weight_tile_bytes, bpc
            )

        mxu_busy += tile_mxu
        load_wgt += tile_load
        copy_psum += tile_copy
        total_pairs += tile.total_pairs
        if index == 0:
            # Nothing to hide behind on the first tile.
            stall_gather += tile_gather
            stall_rulegen += tile_rulegen
            gather_wgt_stall += tile_gather_wgt
        else:
            stall_gather += max(0, tile_gather - prev_mxu)
            stall_rulegen += max(0, tile_rulegen - prev_mxu)
            gather_wgt_stall += max(0, tile_gather_wgt - prev_mxu)
        stall_scatter += max(0, tile_scatter - tile_mxu)
        prev_mxu = tile_mxu
        schedule.timeline.append(
            {
                "tile": index,
                "inputs": tile.num_inputs,
                "outputs": tile.num_outputs,
                "mxu": tile_mxu,
                "load_wgt": tile_load,
                "copy_psum": tile_copy,
                "gather_inp": tile_gather,
                "scatter_out": tile_scatter,
                "rulegen": tile_rulegen,
            }
        )

    if weights_fit and tiling.num_tiles:
        # One up-front streamed fetch of the layer weights, paid at layer
        # start (nothing of this layer runs yet, so it cannot hide).
        gather_wgt_stall = _ceil_div(layer_weight_bytes, bpc)

    schedule.rule_entries = total_pairs
    schedule.pruned_outputs = rules.num_outputs if prune else 0
    schedule.breakdown = {
        "rulegen": stall_rulegen,
        "gather_inp": stall_gather,
        "gather_wgt": gather_wgt_stall,
        "load_wgt": load_wgt,
        "mxu": mxu_busy,
        "copy_psum": copy_psum,
        "scatter_out": stall_scatter,
    }
    weight_refetches = 1 if weights_fit else tiling.num_tiles
    schedule.dram_bytes = (
        rules.num_inputs * in_channels * config.act_bytes
        + rules.num_outputs * out_channels * config.act_bytes
        + layer_weight_bytes * weight_refetches
    )
    return schedule


def schedule_dense_layer(
    num_pixels: int,
    in_channels: int,
    out_channels: int,
    config: SpadeConfig,
    kernel_size: int = 3,
    upsample_stride: int = 1,
    out_width: int = 0,
    name: str = "",
) -> LayerSchedule:
    """Analytic schedule of a dense Conv2D / deconv layer.

    Used both for SPADE executing the dense head layers and for the
    DenseAcc baseline executing entire densified models.  The cost model
    mirrors :func:`schedule_sparse_layer` with every pixel active and no
    RuleGen; boundary partial sums between raster tiles contribute a
    two-row ``Copy_psum`` overlap for 3x3 kernels.
    """
    pe_r, pe_c = config.pe_rows, config.pe_cols
    n_c = _ceil_div(max(in_channels, 1), pe_r)
    n_m = _ceil_div(max(out_channels, 1), pe_c)
    fill = pe_r + pe_c
    kernel_elems = (
        kernel_size * kernel_size
        if upsample_stride == 1
        else upsample_stride * upsample_stride
    )
    macs = num_pixels * kernel_elems * in_channels * out_channels
    if upsample_stride > 1:
        # num_pixels counts *input* pixels for deconvs.
        macs = num_pixels * kernel_elems * in_channels * out_channels

    ta_cap = config.buf_in_capacity_pillars(in_channels)
    to_cap = config.buf_out_capacity_pillars(out_channels)
    overlap_per_tile = 2 * out_width if kernel_size == 3 else 0
    ta = max(1, min(ta_cap, max(to_cap - overlap_per_tile, to_cap // 2)))
    num_tiles = _ceil_div(num_pixels, ta)
    bpc = config.dram_bytes_per_cycle

    passes_per_tile = kernel_elems * n_c * n_m
    mxu_busy = macs // (min(in_channels, pe_r) * min(out_channels, pe_c))
    mxu_busy += num_tiles * fill
    load_wgt = passes_per_tile * num_tiles * pe_r
    copy_psum = max(0, num_tiles - 1) * min(overlap_per_tile, to_cap) * n_m
    gather = _ceil_div(num_pixels * in_channels * config.act_bytes, bpc)
    out_pixels = (
        num_pixels * upsample_stride * upsample_stride
        if upsample_stride > 1
        else num_pixels
    )
    scatter = _ceil_div(out_pixels * out_channels * config.act_bytes, bpc)
    layer_weight_bytes = kernel_elems * in_channels * out_channels
    weights_fit = layer_weight_bytes <= config.buf_wgt_bytes
    weight_refetches = 1 if weights_fit else num_tiles

    # Gathers/scatters hide behind MXU except for the first tile and any
    # bandwidth-bound residue.
    stall_gather = gather // max(num_tiles, 1) + max(0, gather - mxu_busy)
    stall_scatter = max(0, scatter - mxu_busy)
    gather_wgt = _ceil_div(layer_weight_bytes * weight_refetches, bpc)
    gather_wgt_stall = gather_wgt // max(num_tiles, 1) + max(
        0, gather_wgt - mxu_busy
    )

    schedule = LayerSchedule(
        name=name,
        conv_type="dense",
        macs=macs,
        num_tiles=num_tiles,
        effective_ta=ta,
    )
    schedule.breakdown = {
        "rulegen": 0,
        "gather_inp": stall_gather,
        "gather_wgt": gather_wgt_stall,
        "load_wgt": load_wgt,
        "mxu": mxu_busy,
        "copy_psum": copy_psum,
        "scatter_out": stall_scatter,
    }
    schedule.dram_bytes = (
        num_pixels * in_channels * config.act_bytes
        + out_pixels * out_channels * config.act_bytes
        + layer_weight_bytes * weight_refetches
    )
    return schedule
