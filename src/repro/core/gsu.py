"""Gather-Scatter Unit: active tile management (paper Sec. III-C).

The ATM exploits the monotonicity of CPR rule indices: as the input index
range of a tile advances, every per-offset output index range advances
too, so the outputs touched by a contiguous input tile form one
contiguous window.  Loading that window into BUFout guarantees *full
reuse* — each input and each output travels on/off chip exactly once —
which is why GSU traffic matches the ideal all-reuse DRAM latency in
Fig. 6(c).

Outputs whose accumulation spans two consecutive input tiles are the
``Copy_psum`` overlap the dataflow has to pay for (Fig. 7(b))."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.rulegen import Rules
from .config import SpadeConfig


@dataclass
class TilePlan:
    """One active input tile and its output window.

    Attributes:
        in_start / in_end: Input index range [start, end).
        out_start / out_end: Output window the tile's partial sums touch.
        pairs_per_offset: Rule entries of this tile per kernel offset.
        overlap_with_prev: Outputs shared with the previous tile's window
            (they require a partial-sum copy).
    """

    in_start: int
    in_end: int
    out_start: int
    out_end: int
    pairs_per_offset: list
    overlap_with_prev: int = 0

    @property
    def num_inputs(self) -> int:
        return self.in_end - self.in_start

    @property
    def num_outputs(self) -> int:
        return self.out_end - self.out_start

    @property
    def total_pairs(self) -> int:
        return int(sum(self.pairs_per_offset))


@dataclass
class TileSchedule:
    """All tiles of one layer plus aggregate traffic statistics."""

    tiles: list = field(default_factory=list)
    total_copy_psum: int = 0

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)


def _output_window(rules: Rules, in_start: int, in_end: int) -> tuple:
    """Output index window touched by inputs [in_start, in_end).

    Relies on per-offset in_idx/out_idx being ascending (CPR property).
    """
    lo, hi = None, None
    counts = []
    for pair in rules.pairs:
        left = np.searchsorted(pair.in_idx, in_start, side="left")
        right = np.searchsorted(pair.in_idx, in_end, side="left")
        counts.append(int(right - left))
        if right > left:
            first, last = int(pair.out_idx[left]), int(pair.out_idx[right - 1])
            lo = first if lo is None else min(lo, first)
            hi = last if hi is None else max(hi, last)
    if lo is None:
        return 0, 0, counts
    return lo, hi + 1, counts


def plan_tiles(
    rules: Rules, max_inputs: int, max_outputs: int
) -> TileSchedule:
    """Greedy ATM tiling: largest input tile whose output window fits.

    Args:
        rules: Layer mapping (indices ascending per offset).
        max_inputs: BUFin capacity in pillars (T_a bound).
        max_outputs: BUFout capacity in pillars.

    Returns:
        A :class:`TileSchedule` covering all inputs.
    """
    schedule = TileSchedule()
    num_inputs = rules.num_inputs
    if num_inputs == 0:
        return schedule
    in_start = 0
    prev_out_end = None
    prev_out_start = None
    while in_start < num_inputs:
        in_end = min(in_start + max_inputs, num_inputs)
        out_start, out_end, counts = _output_window(rules, in_start, in_end)
        # Shrink until the output window fits BUFout (binary search).
        while out_end - out_start > max_outputs and in_end - in_start > 1:
            in_end = in_start + max(1, (in_end - in_start) // 2)
            out_start, out_end, counts = _output_window(rules, in_start, in_end)
        overlap = 0
        if prev_out_end is not None and out_end > out_start:
            overlap = max(0, min(prev_out_end, out_end) - max(prev_out_start,
                                                              out_start))
        schedule.tiles.append(
            TilePlan(
                in_start=in_start,
                in_end=in_end,
                out_start=out_start,
                out_end=out_end,
                pairs_per_offset=counts,
                overlap_with_prev=overlap,
            )
        )
        schedule.total_copy_psum += overlap
        if out_end > out_start:
            prev_out_start, prev_out_end = out_start, out_end
        in_start = in_end
    return schedule


@dataclass
class GSUTraffic:
    """DRAM traffic of one layer under GSU management (full reuse)."""

    gather_bytes: int
    scatter_bytes: int
    weight_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.gather_bytes + self.scatter_bytes + self.weight_bytes


def layer_traffic(
    rules: Rules,
    in_channels: int,
    out_channels: int,
    config: SpadeConfig,
    weight_refetches: int = 1,
) -> GSUTraffic:
    """Off-chip bytes moved for one sparse layer (each datum once)."""
    kernel_elems = len(rules.pairs)
    return GSUTraffic(
        gather_bytes=rules.num_inputs * in_channels * config.act_bytes,
        scatter_bytes=rules.num_outputs * out_channels * config.act_bytes,
        weight_bytes=(
            kernel_elems * in_channels * out_channels * config.wgt_bytes
            * weight_refetches
        ),
    )
