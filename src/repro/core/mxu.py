"""Functional weight-stationary systolic array (the MXU).

The dataflow scheduler (:mod:`repro.core.dataflow`) uses closed-form cycle
counts; this module provides the *cycle-by-cycle* array simulation those
formulas abstract: weights resident in PEs, input vectors entering skewed
from the west, partial sums accumulating southward, results draining after
``rows + cols + n - 1`` cycles.  The test suite checks that the simulated
result equals the matrix product and that the simulated cycle count matches
the scheduler's pipeline model, tying the fast analytic path to a concrete
microarchitecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SystolicRunResult:
    """Outcome of streaming one tile through the array."""

    output: np.ndarray      # (n, cols) accumulated results
    cycles: int             # cycles until the last result drained
    macs: int               # multiply-accumulates performed


class SystolicArray:
    """A rows x cols weight-stationary systolic array.

    PE (r, c) holds ``weight[r, c]``; at each cycle it multiplies the
    activation arriving from the west by its weight, adds the partial sum
    arriving from the north, and forwards both.  Input row ``i`` of the
    streamed tile enters row ``r`` of the array at cycle ``i + r`` (the
    classic skew), so the product row ``i`` leaves the south edge of
    column ``c`` at cycle ``i + rows - 1 + c``.
    """

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._weights = np.zeros((rows, cols), dtype=np.float64)

    def load_weights(self, weights: np.ndarray) -> int:
        """Load a (rows, cols) weight tile; returns the load cycles.

        Weights shift in column-by-column through the array, costing one
        cycle per PE row — the ``Load_wgt`` cost the scheduler charges.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.rows, self.cols):
            raise ValueError(
                f"weight tile must be {(self.rows, self.cols)}, "
                f"got {weights.shape}"
            )
        self._weights = weights.copy()
        return self.rows

    def stream(self, activations: np.ndarray) -> SystolicRunResult:
        """Stream an (n, rows) activation tile; returns products + cycles.

        Simulated PE-by-PE, cycle-by-cycle: no matmul shortcuts, so the
        result doubles as an independent check of the fast path.
        """
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 2 or activations.shape[1] != self.rows:
            raise ValueError(
                f"activation tile must be (n, {self.rows}), "
                f"got {activations.shape}"
            )
        n = len(activations)
        if n == 0:
            return SystolicRunResult(
                output=np.zeros((0, self.cols)), cycles=0, macs=0
            )
        total_cycles = n + self.rows + self.cols - 2
        # Wavefront state: value travelling east in each PE, psum south.
        east = np.zeros((self.rows, self.cols))
        south = np.zeros((self.rows, self.cols))
        output = np.zeros((n, self.cols))
        macs = 0
        for cycle in range(total_cycles + 1):
            # Drain south edge: column c emits input-row index
            # cycle - (rows - 1) - c.
            for col in range(self.cols):
                row_index = cycle - (self.rows - 1) - col - 1
                if 0 <= row_index < n:
                    output[row_index, col] = south[self.rows - 1, col]
            # Shift: east moves right, south moves down (reverse order so
            # we read pre-shift values).
            new_east = np.zeros_like(east)
            new_east[:, 1:] = east[:, :-1]
            new_south = np.zeros_like(south)
            new_south[1:, :] = south[:-1, :]
            # Inject skewed activations at the west edge.
            for row in range(self.rows):
                entry_cycle = cycle - row
                if 0 <= entry_cycle < n:
                    new_east[row, 0] = activations[entry_cycle, row]
            # Compute: every PE multiplies and accumulates.
            active = new_east != 0.0
            macs += int(np.count_nonzero(active))
            south = new_south + new_east * self._weights
            east = new_east
        return SystolicRunResult(output=output, cycles=total_cycles,
                                 macs=macs)

    def matmul(self, activations: np.ndarray,
               weights: np.ndarray) -> SystolicRunResult:
        """Load weights then stream activations (one full pass)."""
        load = self.load_weights(weights)
        result = self.stream(activations)
        return SystolicRunResult(
            output=result.output,
            cycles=result.cycles + load,
            macs=result.macs,
        )


def pipeline_cycles(n: int, rows: int, cols: int) -> int:
    """Closed-form cycles of one pass: fill + stream + drain.

    This is the expression the dataflow scheduler amortizes per tile; the
    tests assert it equals :meth:`SystolicArray.stream`'s measured count.
    """
    if n == 0:
        return 0
    return n + rows + cols - 2
