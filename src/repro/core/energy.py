"""Energy model: compute, SRAM, DRAM and sparse-management components.

Per-component energies follow the paper's methodology: MAC energy from
the synthesized PE at 32 nm, SRAM energies from the CACTI-substitute
(:mod:`repro.hw.sram`), DRAM energy from the DRAM model's per-byte and
per-activate costs.  Fig. 12 reports savings per component (Compute /
SRAM / DRAM), which is exactly the breakdown this module produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.dram import DRAMConfig
from ..hw.sram import SRAMModel
from .config import SpadeConfig
from .dataflow import LayerSchedule


@dataclass
class EnergyBreakdown:
    """Picojoule totals per component for one layer or one model."""

    compute_pj: float = 0.0
    sram_pj: float = 0.0
    dram_pj: float = 0.0
    rgu_pj: float = 0.0
    pruning_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.compute_pj
            + self.sram_pj
            + self.dram_pj
            + self.rgu_pj
            + self.pruning_pj
            + self.static_pj
        )

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    def add(self, other: "EnergyBreakdown") -> None:
        self.compute_pj += other.compute_pj
        self.sram_pj += other.sram_pj
        self.dram_pj += other.dram_pj
        self.rgu_pj += other.rgu_pj
        self.pruning_pj += other.pruning_pj
        self.static_pj += other.static_pj


class EnergyModel:
    """Maps a :class:`LayerSchedule` to an energy breakdown."""

    def __init__(self, config: SpadeConfig, dram: DRAMConfig = None):
        self.config = config
        self.dram = dram or DRAMConfig()
        self._buf_in = SRAMModel(config.buf_in_bytes, width_bytes=config.pe_rows)
        self._buf_out = SRAMModel(
            config.buf_out_bytes, width_bytes=config.pe_cols * config.psum_bytes
        )
        self._buf_wgt = SRAMModel(config.buf_wgt_bytes, width_bytes=config.pe_rows)
        total_kb = (
            config.buf_in_bytes + config.buf_out_bytes + config.buf_wgt_bytes
        ) / 1024
        self._leakage_pj_per_cycle = 0.012 * total_kb / config.clock_ghz

    def layer_energy(
        self,
        schedule: LayerSchedule,
        in_channels: int,
        out_channels: int,
    ) -> EnergyBreakdown:
        """Energy of one scheduled layer."""
        cfg = self.config
        macs = schedule.macs
        n_c = -(-max(in_channels, 1) // cfg.pe_rows)
        n_m = -(-max(out_channels, 1) // cfg.pe_cols)

        # Every rule entry streams one input vector through the array once
        # per output-channel tile, and read-modify-writes one psum vector
        # once per input-channel tile.
        if schedule.rule_entries:
            input_bytes = schedule.rule_entries * in_channels * cfg.act_bytes * n_m
            psum_bytes = (
                schedule.rule_entries * out_channels * cfg.psum_bytes * 2 * n_c
            )
        else:
            # Dense layer: same counting with pixels * kernel as entries.
            entries = macs // max(in_channels * out_channels, 1)
            input_bytes = entries * in_channels * cfg.act_bytes * n_m
            psum_bytes = entries * out_channels * cfg.psum_bytes * 2 * n_c
        weight_bytes = schedule.breakdown.get("load_wgt", 0) * cfg.pe_cols

        sram_pj = (
            self._buf_in.energy_for_bytes(input_bytes)
            + self._buf_out.energy_for_bytes(psum_bytes // 2)
            + self._buf_out.energy_for_bytes(psum_bytes // 2, is_write=True)
            + self._buf_wgt.energy_for_bytes(weight_bytes)
        )
        dram_pj = schedule.dram_bytes * self.dram.energy_rw_pj_per_byte
        return EnergyBreakdown(
            compute_pj=macs * cfg.mac_energy_pj,
            sram_pj=sram_pj,
            dram_pj=dram_pj,
            rgu_pj=schedule.rule_entries * cfg.rgu_energy_per_rule_pj,
            pruning_pj=schedule.pruned_outputs * cfg.pruning_energy_per_pillar_pj,
            static_pj=schedule.total_cycles * self._leakage_pj_per_cycle,
        )
