"""DenseAcc: the ideal dense accelerator baseline (paper Sec. IV-A).

DenseAcc is "a simplified version of SPADE that supports only dense
convolution operations without RGU, GSU, and pruning support": the same
MXU and buffers, processing the *densified* pseudo-image of every layer.
It is the reference point for the paper's sparsity-proportional speedup
and energy-savings claims (Figs. 9, 10(c), 11(c), 12).
"""

from __future__ import annotations

from ..analysis.sparsity import LayerTrace, ModelTrace
from .accelerator import LayerResult, ModelResult
from .config import SpadeConfig
from .dataflow import schedule_dense_layer
from .energy import EnergyModel


class DenseAccelerator:
    """Cycle simulator for DenseAcc; runs every layer densified."""

    def __init__(self, config: SpadeConfig):
        self.config = config
        self.energy_model = EnergyModel(config)

    def run_layer(self, trace: LayerTrace) -> LayerResult:
        spec = trace.spec
        if spec.upsample:
            num_pixels = trace.in_shape[0] * trace.in_shape[1]
        else:
            num_pixels = trace.out_shape[0] * trace.out_shape[1]
        schedule = schedule_dense_layer(
            num_pixels,
            spec.in_channels,
            spec.out_channels,
            self.config,
            kernel_size=spec.kernel_size,
            upsample_stride=spec.stride if spec.upsample else 1,
            out_width=trace.out_shape[1],
            name=spec.name,
        )
        energy = self.energy_model.layer_energy(
            schedule, spec.in_channels, spec.out_channels
        )
        return LayerResult(trace=trace, schedule=schedule, energy=energy)

    def run_trace(self, model_trace: ModelTrace) -> ModelResult:
        """Execute a traced model with every layer densified."""
        result = ModelResult(
            model_name=model_trace.spec.name,
            accelerator=f"DenseAcc.{self.config.name}",
            clock_ghz=self.config.clock_ghz,
        )
        for layer_trace in model_trace.layers:
            result.layers.append(self.run_layer(layer_trace))
        return result
