"""Workload specifications for the paper's benchmark networks.

A :class:`ModelSpec` is the layer graph of one detector variant: every
convolution with its channels, kernel, stride, sparse-execution type and
optional dynamic-pruning keep ratio.  Specs drive three consumers:

* GOPs / sparsity accounting (Table I) via :mod:`repro.analysis.sparsity`;
* the SPADE / DenseAcc / PointAcc cycle simulators, which schedule one
  layer at a time;
* the functional sparse runner, which executes the graph on real pillar
  batches to obtain per-layer active sets.

Layer graphs follow the OpenPCDet configurations the paper evaluates:
PointPillars on KITTI (496 x 432 grid), CenterPoint-Pillar and PillarNet
on nuScenes (512 x 512 / 1024 x 1024 grids).  The seven sparse variants
(SPP1-3, SCP1-3, SPN) replace dense Conv2D with the sparse-conv types in
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..data.grids import KITTI_GRID, NUSCENES_FINE_GRID, NUSCENES_GRID, GridSpec
from ..sparse.rulegen import ConvType


class LayerOp(Enum):
    """How a layer executes."""

    DENSE = "dense"            # plain Conv2D on the dense pseudo-image
    SPARSE = "sparse"          # sparse convolution (see conv_type)
    DENSE_DECONV = "dense_deconv"


@dataclass
class LayerSpec:
    """One convolution layer of a detector.

    Attributes:
        name: Paper-style label, e.g. ``"B1C1"`` (stage 1, conv 1).
        op: Dense or sparse execution.
        conv_type: Sparse variant when ``op`` is SPARSE.
        in_channels / out_channels: Feature widths.
        kernel_size: Kernel edge (deconvs use kernel = stride).
        stride: 1 for same-size, >=2 for down/upsampling.
        upsample: True when the layer is a deconvolution.
        prune_keep: If set, dynamic vector pruning keeps this fraction of
            active output pillars (SpConv-P layers only).
        stage: Backbone stage index (for per-stage reporting).
    """

    name: str
    op: LayerOp
    in_channels: int
    out_channels: int
    kernel_size: int = 3
    stride: int = 1
    conv_type: ConvType = None
    upsample: bool = False
    prune_keep: float = None
    stage: int = 0

    def dense_macs(self, out_height: int, out_width: int) -> int:
        """MACs of executing this layer densely at the given output size."""
        if self.upsample:
            # Transposed conv: every input produces K*K outputs.
            in_height = out_height // self.stride
            in_width = out_width // self.stride
            return (
                self.kernel_size
                * self.kernel_size
                * self.in_channels
                * self.out_channels
                * in_height
                * in_width
            )
        return (
            self.kernel_size
            * self.kernel_size
            * self.in_channels
            * self.out_channels
            * out_height
            * out_width
        )


@dataclass
class ModelSpec:
    """A complete detector workload.

    Attributes:
        name: Table I model tag (PP, SPP1, ..., SPN).
        base: The dense family (``"pointpillars"`` etc.).
        grid: BEV grid of the pillar encoder input.
        pillar_channels: Pillar feature width C.
        layers: Backbone + neck + head layers in execution order.
        description: One-line summary (backbone / head types, Table I row).
    """

    name: str
    base: str
    grid: GridSpec
    pillar_channels: int
    layers: list = field(default_factory=list)
    description: str = ""

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layers_in_stage(self, stage: int) -> list:
        return [layer for layer in self.layers if layer.stage == stage]


def _stage(
    prefix: str,
    stage: int,
    num_layers: int,
    in_channels: int,
    out_channels: int,
    conv_type,
    strided_type,
    stride: int = 2,
    prune_keep: float = None,
) -> list:
    """One backbone stage: strided conv then (num_layers - 1) same-size convs."""
    op = LayerOp.DENSE if conv_type is None else LayerOp.SPARSE
    layers = [
        LayerSpec(
            name=f"{prefix}{stage}C1",
            op=op,
            in_channels=in_channels,
            out_channels=out_channels,
            stride=stride,
            conv_type=strided_type,
            prune_keep=prune_keep,
            stage=stage,
        )
    ]
    for index in range(2, num_layers + 1):
        layers.append(
            LayerSpec(
                name=f"{prefix}{stage}C{index}",
                op=op,
                in_channels=out_channels,
                out_channels=out_channels,
                conv_type=conv_type,
                stage=stage,
            )
        )
    return layers


def _deconv(name, stage, in_channels, out_channels, stride, conv_type) -> LayerSpec:
    if stride == 1:
        # A stride-1 "deconv" is a 1x1 projection.
        return LayerSpec(
            name=name,
            op=LayerOp.DENSE if conv_type is None else LayerOp.SPARSE,
            in_channels=in_channels,
            out_channels=out_channels,
            kernel_size=1,
            conv_type=ConvType.SUBM if conv_type is not None else None,
            stage=stage,
        )
    return LayerSpec(
        name=name,
        op=LayerOp.DENSE_DECONV if conv_type is None else LayerOp.SPARSE,
        in_channels=in_channels,
        out_channels=out_channels,
        kernel_size=stride,
        stride=stride,
        conv_type=ConvType.DECONV if conv_type is not None else None,
        upsample=True,
        stage=stage,
    )


def _pp_variant(name, conv_type, strided_type, head_type=None, prune_keep=None,
                description="") -> ModelSpec:
    """PointPillars family on KITTI: 3-stage backbone, 3 deconvs, SSD head."""
    layers = []
    layers += _stage("B", 1, 4, 64, 64, conv_type, strided_type,
                     prune_keep=prune_keep)
    layers += _stage("B", 2, 6, 64, 128, conv_type, strided_type,
                     prune_keep=prune_keep)
    layers += _stage("B", 3, 6, 128, 256, conv_type, strided_type,
                     prune_keep=prune_keep)
    layers.append(_deconv("D1", 1, 64, 128, 1, conv_type))
    layers.append(_deconv("D2", 2, 128, 128, 2, conv_type))
    layers.append(_deconv("D3", 3, 256, 128, 4, conv_type))
    head_op = LayerOp.DENSE if head_type is None else LayerOp.SPARSE
    # The three SSD head convolutions (cls 18ch, box 42ch, dir 12ch) share
    # the same 1x1 input and are fused into one 72-channel conv, as
    # deployment stacks do — this also keeps the PE columns packed.
    layers.append(
        LayerSpec(
            name="Hfused",
            op=head_op,
            in_channels=384,
            out_channels=72,
            kernel_size=1,
            conv_type=head_type,
            stage=4,
        )
    )
    return ModelSpec(
        name=name,
        base="pointpillars",
        grid=KITTI_GRID,
        pillar_channels=64,
        layers=layers,
        description=description,
    )


def _cp_variant(name, conv_type, strided_type, head_type=None, prune_keep=None,
                description="") -> ModelSpec:
    """CenterPoint-Pillar on nuScenes: 3-stage backbone, center head."""
    layers = []
    layers += _stage("B", 1, 4, 64, 64, conv_type, strided_type,
                     prune_keep=prune_keep)
    layers += _stage("B", 2, 6, 64, 128, conv_type, strided_type,
                     prune_keep=prune_keep)
    layers += _stage("B", 3, 6, 128, 256, conv_type, strided_type,
                     prune_keep=prune_keep)
    layers.append(_deconv("D1", 1, 64, 128, 1, conv_type))
    layers.append(_deconv("D2", 2, 128, 128, 2, conv_type))
    layers.append(_deconv("D3", 3, 256, 128, 4, conv_type))
    head_op = LayerOp.DENSE if head_type is None else LayerOp.SPARSE
    shared_type = head_type if head_type is None else (
        ConvType.SUBM if head_type is ConvType.SUBM else head_type
    )
    layers.append(
        LayerSpec(
            name="Hshared",
            op=head_op,
            in_channels=384,
            out_channels=64,
            kernel_size=3,
            conv_type=shared_type,
            stage=4,
        )
    )
    # CenterPoint sub-heads (heatmap 10, offset 2, z 1, size 3, rot 2,
    # vel 2) fused into one 20-channel conv off the shared feature.
    layers.append(
        LayerSpec(
            name="Hfused",
            op=head_op,
            in_channels=64,
            out_channels=20,
            kernel_size=3,
            conv_type=head_type,
            stage=4,
        )
    )
    return ModelSpec(
        name=name,
        base="centerpoint",
        grid=NUSCENES_GRID,
        pillar_channels=64,
        layers=layers,
        description=description,
    )


def _pn_variant(name, encoder_type, backbone_type, strided_type,
                description="") -> ModelSpec:
    """PillarNet on nuScenes: sparse 2D encoder + dense-style backbone + head.

    The encoder runs on the 0.1 m fine grid (1024 x 1024) at scales
    1x..8x with channels 32/64/128/256; the backbone and center head run
    at 8x (128 x 128).  PN's published baseline already executes the
    encoder with SpConv-S, which is why its dense-equivalent GOPs are so
    much larger than its measured GOPs (Table I).
    """
    enc_op = LayerOp.DENSE if encoder_type is None else LayerOp.SPARSE
    bb_op = LayerOp.DENSE if backbone_type is None else LayerOp.SPARSE
    layers = []
    # Encoder stage 1 (full resolution, 32ch).
    layers.append(LayerSpec("E1C1", enc_op, 32, 32, conv_type=encoder_type, stage=1))
    layers.append(LayerSpec("E1C2", enc_op, 32, 32, conv_type=encoder_type, stage=1))
    # Encoder stage 2 (1/2, 64ch).
    layers.append(
        LayerSpec("E2C1", enc_op, 32, 64, stride=2,
                  conv_type=strided_type if encoder_type else None, stage=2)
    )
    layers.append(LayerSpec("E2C2", enc_op, 64, 64, conv_type=encoder_type, stage=2))
    layers.append(LayerSpec("E2C3", enc_op, 64, 64, conv_type=encoder_type, stage=2))
    # Encoder stage 3 (1/4, 128ch).
    layers.append(
        LayerSpec("E3C1", enc_op, 64, 128, stride=2,
                  conv_type=strided_type if encoder_type else None, stage=3)
    )
    layers.append(LayerSpec("E3C2", enc_op, 128, 128, conv_type=encoder_type, stage=3))
    layers.append(LayerSpec("E3C3", enc_op, 128, 128, conv_type=encoder_type, stage=3))
    # Encoder stage 4 (1/8, 256ch).
    layers.append(
        LayerSpec("E4C1", enc_op, 128, 256, stride=2,
                  conv_type=strided_type if encoder_type else None, stage=4)
    )
    layers.append(LayerSpec("E4C2", enc_op, 256, 256, conv_type=encoder_type, stage=4))
    layers.append(LayerSpec("E4C3", enc_op, 256, 256, conv_type=encoder_type, stage=4))
    # Backbone at 1/8 (two blocks of 256), neck deconv, center head.
    for index in range(1, 5):
        layers.append(
            LayerSpec(f"B5C{index}", bb_op, 256, 256,
                      conv_type=backbone_type, stage=5)
        )
    layers.append(
        LayerSpec("B6C1", bb_op, 256, 256, stride=2,
                  conv_type=strided_type if backbone_type else None, stage=6)
    )
    for index in range(2, 5):
        layers.append(
            LayerSpec(f"B6C{index}", bb_op, 256, 256,
                      conv_type=backbone_type, stage=6)
        )
    layers.append(_deconv("D5", 5, 256, 128, 1, backbone_type))
    layers.append(_deconv("D6", 6, 256, 128, 2, backbone_type))
    layers.append(LayerSpec("Hshared", LayerOp.DENSE, 256, 64, kernel_size=3, stage=7))
    layers.append(LayerSpec("Hfused", LayerOp.DENSE, 64, 20, kernel_size=3, stage=7))
    return ModelSpec(
        name=name,
        base="pillarnet",
        grid=NUSCENES_FINE_GRID,
        pillar_channels=32,
        layers=layers,
        description=description,
    )


def build_model_spec(name: str) -> ModelSpec:
    """Construct any Table I model spec by name."""
    builders = {
        # PointPillars family (KITTI).
        "PP": lambda: _pp_variant(
            "PP", None, None, description="Dense Conv2D backbone + head"),
        "SPP1": lambda: _pp_variant(
            "SPP1", ConvType.SPCONV, ConvType.STRIDED,
            description="SpConv backbone, Conv2D head"),
        "SPP2": lambda: _pp_variant(
            "SPP2", ConvType.SPCONV_P, ConvType.STRIDED, prune_keep=0.55,
            description="SpConv-P backbone (dynamic pruning), Conv2D head"),
        "SPP3": lambda: _pp_variant(
            "SPP3", ConvType.SUBM, ConvType.STRIDED_SUBM,
            description="SpConv-S backbone, Conv2D head"),
        # CenterPoint family (nuScenes).
        "CP": lambda: _cp_variant(
            "CP", None, None, description="Dense Conv2D backbone + head"),
        "SCP1": lambda: _cp_variant(
            "SCP1", ConvType.SPCONV, ConvType.STRIDED,
            description="SpConv backbone, Conv2D head"),
        "SCP2": lambda: _cp_variant(
            "SCP2", ConvType.SPCONV_P, ConvType.STRIDED, prune_keep=0.5,
            head_type=ConvType.SPCONV_P,
            description="SpConv-P backbone + SpConv-P head"),
        "SCP3": lambda: _cp_variant(
            "SCP3", ConvType.SUBM, ConvType.STRIDED_SUBM,
            head_type=ConvType.SPCONV_P,
            description="SpConv-S backbone, SpConv-P head"),
        # PillarNet family (nuScenes).
        "PN-Dense": lambda: _pn_variant(
            "PN-Dense", None, None, None,
            description="Hypothetical dense PillarNet (encoder densified)"),
        "PN": lambda: _pn_variant(
            "PN", ConvType.SUBM, None, ConvType.STRIDED_SUBM,
            description="SpConv-S encoder, Conv2D backbone + head"),
        "SPN": lambda: _pn_variant(
            "SPN", ConvType.SUBM, ConvType.SUBM, ConvType.STRIDED_SUBM,
            description="SpConv-S encoder + backbone, Conv2D head"),
    }
    if name not in builders:
        raise KeyError(f"unknown model {name!r}; known: {sorted(builders)}")
    return builders[name]()


#: All Table I rows in paper order.
TABLE1_MODELS = (
    "PP", "SPP1", "SPP2", "SPP3",
    "CP", "SCP1", "SCP2", "SCP3",
    "PN-Dense", "PN", "SPN",
)

#: The seven sparse models SPADE is evaluated on (Fig. 9 order).
SPARSE_MODELS = ("SPP1", "SPP2", "SPP3", "SCP1", "SCP2", "SCP3", "SPN")
