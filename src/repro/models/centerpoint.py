"""Trainable mini-CenterPoint: center-heatmap detection at experiment scale.

CenterPoint (the paper's second model family, SCP1-3) replaces the SSD
anchor head with a class-agnostic *center heatmap* trained with a focal
loss plus per-cell regression of offsets and sizes.  This module provides
the scaled-down trainable variant used to cross-check that the dynamic
pruning recipe is head-agnostic (the paper applies SpConv-P to both head
styles in Table I).
"""

from __future__ import annotations

import numpy as np

from ..data.grids import MINI_GRID, GridSpec
from ..data.pillars import PillarBatch, scatter_to_dense
from ..data.pointcloud import BoundingBox3D
from ..nn.layers import Conv2D, Module, Sequential, conv_bn_relu
from ..nn.losses import focal_loss_with_logits, sigmoid, smooth_l1
from ..nn.pointnet import PillarFeatureNet
from ..nn.regularization import TopKVectorPruner, VectorSparsityRegularizer
from .pointpillars import BOX_DIM, DetectionTargets, build_targets


class MiniCenterPoint(Module):
    """Center-heatmap variant of the mini detector.

    Same pillar encoder and backbone shape as
    :class:`~repro.models.pointpillars.MiniPointPillars`, but the head
    predicts a Gaussian-smoothed center heatmap (focal loss) next to the
    box regression channels.
    """

    def __init__(self, grid: GridSpec = None, channels: int = 24,
                 seed: int = 0):
        rng = np.random.default_rng(seed)
        self.grid = grid or MINI_GRID
        self.channels = channels
        self.pillar_net = PillarFeatureNet(9, channels, rng=rng)
        self.regularizer = VectorSparsityRegularizer(strength=0.0)
        self.pruner = TopKVectorPruner(keep_ratio=1.0, enabled=False)
        self.stage1 = Sequential(
            conv_bn_relu(channels, channels, stride=2, rng=rng),
            conv_bn_relu(channels, channels, rng=rng),
        )
        self.stage2 = Sequential(
            conv_bn_relu(channels, 2 * channels, stride=2, rng=rng),
            conv_bn_relu(2 * channels, 2 * channels, rng=rng),
        )
        self.shared = conv_bn_relu(2 * channels, channels, rng=rng)
        self.head = Conv2D(channels, 1 + BOX_DIM, kernel_size=3, rng=rng)
        self._coords = None

    @property
    def head_stride(self) -> int:
        return 4

    def forward(self, batch: PillarBatch):
        pillar_features = self.pillar_net(
            (batch.point_features, batch.point_counts)
        )
        dense = scatter_to_dense(batch.coords, pillar_features,
                                 self.grid.shape)[None]
        self._coords = batch.coords
        dense = self.regularizer(dense)
        dense = self.pruner(dense)
        features = self.stage1(dense)
        features = self.stage2(features)
        features = self.shared(features)
        return self.head(features)

    def backward(self, grad):
        grad = self.head.backward(grad)
        grad = self.shared.backward(grad)
        grad = self.stage2.backward(grad)
        grad = self.stage1.backward(grad)
        grad = self.pruner.backward(grad)
        grad = self.regularizer.backward(grad)
        coords = self._coords
        pillar_grad = grad[0][:, coords[:, 0], coords[:, 1]].T
        return self.pillar_net.backward(pillar_grad.astype(np.float32))


def gaussian_heatmap_targets(boxes: list, grid: GridSpec,
                             stride: int = 4,
                             sigma_cells: float = 1.0) -> DetectionTargets:
    """Center targets with a Gaussian splat around each object center.

    CenterPoint supervises a soft heatmap rather than one-hot cells; the
    Gaussian radius here is fixed (objects at this scale span few cells).
    """
    base = build_targets(boxes, grid, stride)
    height, width = base.objectness.shape[2:]
    heatmap = np.zeros((height, width), dtype=np.float32)
    rows, cols = np.nonzero(base.objectness[0, 0])
    ys, xs = np.mgrid[0:height, 0:width]
    for row, col in zip(rows, cols):
        splat = np.exp(-((ys - row) ** 2 + (xs - col) ** 2)
                       / (2 * sigma_cells**2))
        heatmap = np.maximum(heatmap, splat.astype(np.float32))
    return DetectionTargets(
        objectness=heatmap[None, None],
        boxes=base.boxes,
        box_mask=base.box_mask,
    )


def center_loss(outputs: np.ndarray, targets: DetectionTargets) -> tuple:
    """Focal heatmap loss + masked smooth-L1 box loss."""
    logits = outputs[:, :1]
    boxes = outputs[:, 1:]
    heat_loss, heat_grad = focal_loss_with_logits(
        logits, targets.objectness, alpha=0.5, gamma=2.0
    )
    box_loss, box_grad = smooth_l1(
        boxes, targets.boxes, np.broadcast_to(targets.box_mask, boxes.shape)
    )
    grad = np.concatenate([20.0 * heat_grad, 2.0 * box_grad], axis=1)
    return 20.0 * heat_loss + 2.0 * box_loss, grad.astype(np.float32)


def decode_centers(outputs: np.ndarray, grid: GridSpec, stride: int = 4,
                   score_threshold: float = 0.25,
                   max_detections: int = 50) -> list:
    """Peak-pick the heatmap into scored boxes (3x3 local-max NMS)."""
    probs = sigmoid(outputs[0, 0])
    boxes = outputs[0, 1:]
    height, width = probs.shape
    padded = np.pad(probs, 1, constant_values=0.0)
    windows = np.stack([
        padded[dr:dr + height, dc:dc + width]
        for dr in range(3) for dc in range(3)
    ])
    is_peak = probs >= windows.max(axis=0) - 1e-9
    rows, cols = np.nonzero((probs > score_threshold) & is_peak)
    order = np.argsort(-probs[rows, cols])[:max_detections]
    cell = grid.pillar_size * stride
    detections = []
    for index in order:
        row, col = int(rows[index]), int(cols[index])
        center_x = grid.x_range[0] + (col + 0.5) * cell + boxes[0, row, col] * cell
        center_y = grid.y_range[0] + (row + 0.5) * cell + boxes[1, row, col] * cell
        length = float(np.exp(np.clip(boxes[2, row, col], -3, 3)))
        width_m = float(np.exp(np.clip(boxes[3, row, col], -3, 3)))
        detections.append(
            BoundingBox3D(
                center=(float(center_x), float(center_y), -1.0),
                size=(length, width_m, 1.6),
                yaw=0.0,
                score=float(probs[row, col]),
            )
        )
    return detections
