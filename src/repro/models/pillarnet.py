"""Functional sparse backbone execution at full grid scale.

:class:`SparseBackboneRunner` executes the sparse layers of any
:class:`~repro.models.specs.ModelSpec` on a real
:class:`~repro.sparse.SparseTensor` with He-initialized int8-quantized
weights.  It is the functional complement of the geometric trace: where
:func:`repro.analysis.sparsity.trace_model` propagates only coordinates,
the runner propagates *features*, enabling magnitude-based dynamic
pruning and the feature-map occupancy study of paper Fig. 13(b).

PillarNet's sparse encoder is the primary user (hence the module name),
but the PointPillars and CenterPoint backbones run through the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.quantization import calibrate
from ..sparse.functional import init_conv_weight, sparse_conv_apply
from ..sparse.pruning import sparsity_prune
from ..sparse.rulegen import build_rules
from ..sparse.tensor import SparseTensor
from .specs import LayerOp, ModelSpec


@dataclass
class SparseLayerRecord:
    """Per-layer functional outcome."""

    name: str
    tensor: SparseTensor
    rules: object
    kept_fraction: float = 1.0


@dataclass
class SparseRunResult:
    """All sparse-layer outputs of one functional forward pass."""

    records: list = field(default_factory=list)

    def record(self, name: str) -> SparseLayerRecord:
        for item in self.records:
            if item.name == name:
                return item
        raise KeyError(f"no record for layer {name!r}")


class SparseBackboneRunner:
    """Execute a model spec's sparse chain functionally.

    Args:
        spec: Model whose sparse backbone/encoder to run.
        seed: Weight initialization seed.
        quantize: Round-trip weights through int8 (paper models are int8).
    """

    def __init__(self, spec: ModelSpec, seed: int = 0, quantize: bool = True):
        self.spec = spec
        self.quantize = quantize
        self._rng = np.random.default_rng(seed)
        self._weights = {}

    def _weight_for(self, layer) -> np.ndarray:
        if layer.name not in self._weights:
            kernel = (
                layer.stride if layer.conv_type is not None
                and layer.conv_type.value == "deconv" else layer.kernel_size
            )
            weight = init_conv_weight(
                kernel, layer.in_channels, layer.out_channels, self._rng
            )
            if self.quantize:
                params = calibrate(weight)
                weight = params.dequantize(params.quantize(weight))
            self._weights[layer.name] = weight
        return self._weights[layer.name]

    def run(self, tensor: SparseTensor, relu: bool = True) -> SparseRunResult:
        """Run the backbone chain (stops at the first dense layer).

        ReLU between layers keeps magnitudes in a realistic regime so
        magnitude pruning behaves like the trained network's.
        """
        result = SparseRunResult()
        current = tensor
        for layer in self.spec.layers:
            if layer.op is not LayerOp.SPARSE:
                break
            if layer.name.startswith(("D", "H")):
                break
            if layer.in_channels != current.num_channels:
                raise ValueError(
                    f"layer {layer.name}: expects {layer.in_channels} "
                    f"channels, tensor has {current.num_channels}"
                )
            weight = self._weight_for(layer)
            rules = build_rules(
                current.coords,
                current.shape,
                layer.conv_type,
                kernel_size=layer.kernel_size,
                stride=layer.stride,
            )
            current = sparse_conv_apply(current, weight, rules)
            if relu:
                current = SparseTensor(
                    current.coords,
                    np.maximum(current.features, 0.0),
                    current.shape,
                )
            kept = 1.0
            if layer.prune_keep is not None:
                before = current.num_active
                current, _ = sparsity_prune(current, layer.prune_keep)
                kept = current.num_active / before if before else 1.0
            result.records.append(
                SparseLayerRecord(
                    name=layer.name,
                    tensor=current,
                    rules=rules,
                    kept_fraction=kept,
                )
            )
        return result
