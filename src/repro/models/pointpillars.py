"""Trainable mini-PointPillars for the accuracy/sparsity experiments.

Full-resolution KITTI training is out of reach for a numpy framework, so
the accuracy experiments (paper Fig. 13(a), Table I mAP columns) run a
scaled-down PointPillars on the MINI grid (64 x 64 pillars): the same
architecture shape — PointNet pillar encoder, scatter, two conv stages,
SSD-style head — with hooks for the vector-sparsity regularizer and the
dynamic Top-K pruner at the stage boundary, which is exactly where
SpConv-P prunes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.grids import MINI_GRID, GridSpec
from ..data.pillars import PillarBatch, scatter_to_dense
from ..data.pointcloud import BoundingBox3D
from ..nn.layers import Conv2D, Module, Sequential, conv_bn_relu
from ..nn.losses import bce_with_logits, sigmoid, smooth_l1
from ..nn.pointnet import PillarFeatureNet
from ..nn.regularization import TopKVectorPruner, VectorSparsityRegularizer

#: Box regression targets per cell: (dx, dy, log l, log w).
BOX_DIM = 4


@dataclass
class DetectionTargets:
    """Per-cell training targets on the head grid."""

    objectness: np.ndarray      # (1, 1, H, W)
    boxes: np.ndarray           # (1, BOX_DIM, H, W)
    box_mask: np.ndarray        # (1, 1, H, W) cells with a GT box


class MiniPointPillars(Module):
    """PointPillars at experiment scale with dynamic-pruning hooks.

    Architecture: PillarFeatureNet(9 -> C) -> scatter -> regularizer ->
    pruner -> stage1 (stride 2, 2 convs) -> stage2 (stride 2, 2 convs) ->
    head (1x1 conv -> 1 + BOX_DIM channels) at 1/4 resolution.
    """

    def __init__(self, grid: GridSpec = None, channels: int = 24, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.grid = grid or MINI_GRID
        self.channels = channels
        self.pillar_net = PillarFeatureNet(9, channels, rng=rng)
        self.regularizer = VectorSparsityRegularizer(strength=0.0)
        self.pruner = TopKVectorPruner(keep_ratio=1.0, enabled=False)
        self.stage1 = Sequential(
            conv_bn_relu(channels, channels, stride=2, rng=rng),
            conv_bn_relu(channels, channels, rng=rng),
        )
        self.stage2 = Sequential(
            conv_bn_relu(channels, 2 * channels, stride=2, rng=rng),
            conv_bn_relu(2 * channels, 2 * channels, rng=rng),
        )
        self.head = Conv2D(2 * channels, 1 + BOX_DIM, kernel_size=1, rng=rng)
        self._coords = None

    @property
    def head_stride(self) -> int:
        return 4

    def forward(self, batch: PillarBatch):
        pillar_features = self.pillar_net(
            (batch.point_features, batch.point_counts)
        )
        dense = scatter_to_dense(batch.coords, pillar_features,
                                 self.grid.shape)[None]
        self._coords = batch.coords
        dense = self.regularizer(dense)
        dense = self.pruner(dense)
        features = self.stage1(dense)
        features = self.stage2(features)
        return self.head(features)

    def backward(self, grad):
        grad = self.head.backward(grad)
        grad = self.stage2.backward(grad)
        grad = self.stage1.backward(grad)
        grad = self.pruner.backward(grad)
        grad = self.regularizer.backward(grad)
        # Gather the dense gradient back to the active pillars.
        coords = self._coords
        pillar_grad = grad[0][:, coords[:, 0], coords[:, 1]].T
        return self.pillar_net.backward(pillar_grad.astype(np.float32))


def build_targets(boxes: list, grid: GridSpec, stride: int = 4) -> DetectionTargets:
    """Rasterize ground-truth boxes into per-cell head targets."""
    height = grid.ny // stride
    width = grid.nx // stride
    objectness = np.zeros((1, 1, height, width), dtype=np.float32)
    box_targets = np.zeros((1, BOX_DIM, height, width), dtype=np.float32)
    box_mask = np.zeros((1, 1, height, width), dtype=np.float32)
    cell = grid.pillar_size * stride
    for box in boxes:
        col = int((box.center[0] - grid.x_range[0]) / cell)
        row = int((box.center[1] - grid.y_range[0]) / cell)
        if not (0 <= row < height and 0 <= col < width):
            continue
        objectness[0, 0, row, col] = 1.0
        center_x = grid.x_range[0] + (col + 0.5) * cell
        center_y = grid.y_range[0] + (row + 0.5) * cell
        box_targets[0, 0, row, col] = (box.center[0] - center_x) / cell
        box_targets[0, 1, row, col] = (box.center[1] - center_y) / cell
        box_targets[0, 2, row, col] = np.log(max(box.size[0], 0.1))
        box_targets[0, 3, row, col] = np.log(max(box.size[1], 0.1))
        box_mask[0, 0, row, col] = 1.0
    return DetectionTargets(objectness, box_targets, box_mask)


def detection_loss(outputs: np.ndarray, targets: DetectionTargets) -> tuple:
    """Objectness BCE + masked smooth-L1 box loss; returns (loss, grad)."""
    logits = outputs[:, :1]
    boxes = outputs[:, 1:]
    positives = float(targets.box_mask.sum())
    weight = np.where(targets.objectness > 0.5, 20.0, 1.0)
    cls_loss, cls_grad = bce_with_logits(logits, targets.objectness, weight)
    box_loss, box_grad = smooth_l1(
        boxes, targets.boxes, np.broadcast_to(targets.box_mask, boxes.shape)
    )
    grad = np.concatenate([cls_grad, 2.0 * box_grad], axis=1)
    return cls_loss + 2.0 * box_loss + 0.0 * positives, grad.astype(np.float32)


def decode_detections(
    outputs: np.ndarray,
    grid: GridSpec,
    stride: int = 4,
    score_threshold: float = 0.3,
    max_detections: int = 50,
) -> list:
    """Decode head outputs into scored BEV boxes (greedy peak picking)."""
    probs = sigmoid(outputs[0, 0])
    boxes = outputs[0, 1:]
    cell = grid.pillar_size * stride
    rows, cols = np.nonzero(probs > score_threshold)
    order = np.argsort(-probs[rows, cols])[:max_detections]
    detections = []
    occupied = set()
    for index in order:
        row, col = int(rows[index]), int(cols[index])
        # Cheap NMS: one detection per 3x3 neighbourhood.
        key = (row // 2, col // 2)
        if key in occupied:
            continue
        occupied.add(key)
        center_x = grid.x_range[0] + (col + 0.5) * cell + boxes[0, row, col] * cell
        center_y = grid.y_range[0] + (row + 0.5) * cell + boxes[1, row, col] * cell
        length = float(np.exp(np.clip(boxes[2, row, col], -3, 3)))
        width = float(np.exp(np.clip(boxes[3, row, col], -3, 3)))
        detections.append(
            BoundingBox3D(
                center=(float(center_x), float(center_y), -1.0),
                size=(length, width, 1.6),
                yaw=0.0,
                score=float(probs[row, col]),
            )
        )
    return detections
