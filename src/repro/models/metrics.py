"""Detection metrics: rotated BEV IoU, 3D IoU, average precision.

Implements the evaluation pipeline behind the paper's mAP(BEV) / mAP(3D)
columns: polygon intersection of rotated boxes (Sutherland-Hodgman
clipping), height-overlap 3D IoU, greedy matching and interpolated AP.
"""

from __future__ import annotations

import numpy as np

from ..data.pointcloud import BoundingBox3D


def _polygon_area(polygon: np.ndarray) -> float:
    """Shoelace area of a (N, 2) polygon (positive for CCW order)."""
    if len(polygon) < 3:
        return 0.0
    x, y = polygon[:, 0], polygon[:, 1]
    return 0.5 * abs(
        float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
    )


def _clip_polygon(subject: np.ndarray, edge_start, edge_end) -> np.ndarray:
    """Clip a polygon against one half-plane (Sutherland-Hodgman step)."""
    if len(subject) == 0:
        return subject
    clipped = []
    ex, ey = edge_end[0] - edge_start[0], edge_end[1] - edge_start[1]

    def inside(point):
        return (ex * (point[1] - edge_start[1])
                - ey * (point[0] - edge_start[0])) >= -1e-12

    def intersection(p1, p2):
        dx, dy = p2[0] - p1[0], p2[1] - p1[1]
        denom = ex * dy - ey * dx
        if abs(denom) < 1e-12:
            return p2
        t = (ex * (edge_start[1] - p1[1]) - ey * (edge_start[0] - p1[0])) / denom
        return (p1[0] + t * dx, p1[1] + t * dy)

    previous = subject[-1]
    for current in subject:
        if inside(current):
            if not inside(previous):
                clipped.append(intersection(previous, current))
            clipped.append(tuple(current))
        elif inside(previous):
            clipped.append(intersection(previous, current))
        previous = current
    return np.array(clipped) if clipped else np.zeros((0, 2))


def _signed_area(polygon: np.ndarray) -> float:
    x, y = polygon[:, 0], polygon[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def _ensure_ccw(polygon: np.ndarray) -> np.ndarray:
    """Return the polygon in counter-clockwise winding."""
    return polygon[::-1] if _signed_area(polygon) < 0 else polygon


def polygon_intersection_area(poly_a: np.ndarray, poly_b: np.ndarray) -> float:
    """Intersection area of two convex polygons (any winding)."""
    clipped = _ensure_ccw(np.asarray(poly_a, dtype=np.float64))
    poly_b = _ensure_ccw(np.asarray(poly_b, dtype=np.float64))
    for index in range(len(poly_b)):
        clipped = _clip_polygon(clipped, poly_b[index],
                                poly_b[(index + 1) % len(poly_b)])
        if len(clipped) == 0:
            return 0.0
    return _polygon_area(clipped)


def bev_iou(box_a: BoundingBox3D, box_b: BoundingBox3D) -> float:
    """Rotated bird's-eye-view IoU."""
    poly_a = box_a.bev_corners()
    poly_b = box_b.bev_corners()
    inter = polygon_intersection_area(poly_a, poly_b)
    area_a = box_a.size[0] * box_a.size[1]
    area_b = box_b.size[0] * box_b.size[1]
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


def iou_3d(box_a: BoundingBox3D, box_b: BoundingBox3D) -> float:
    """3D IoU: rotated BEV intersection times vertical overlap."""
    inter_bev = polygon_intersection_area(box_a.bev_corners(),
                                          box_b.bev_corners())
    za0 = box_a.center[2] - box_a.size[2] / 2
    za1 = box_a.center[2] + box_a.size[2] / 2
    zb0 = box_b.center[2] - box_b.size[2] / 2
    zb1 = box_b.center[2] + box_b.size[2] / 2
    overlap_z = max(0.0, min(za1, zb1) - max(za0, zb0))
    inter = inter_bev * overlap_z
    vol_a = box_a.size[0] * box_a.size[1] * box_a.size[2]
    vol_b = box_b.size[0] * box_b.size[1] * box_b.size[2]
    union = vol_a + vol_b - inter
    return inter / union if union > 0 else 0.0


def match_detections(
    predictions: list,
    ground_truth: list,
    iou_threshold: float = 0.5,
    iou_fn=bev_iou,
) -> tuple:
    """Greedy score-ordered matching of predictions to ground truth.

    Returns:
        (tp_flags aligned with score-sorted predictions, sorted scores,
        num ground truth).
    """
    order = np.argsort([-p.score for p in predictions])
    matched = [False] * len(ground_truth)
    tp_flags = np.zeros(len(predictions), dtype=bool)
    scores = np.zeros(len(predictions))
    for rank, pred_index in enumerate(order):
        prediction = predictions[pred_index]
        scores[rank] = prediction.score
        best_iou, best_gt = 0.0, -1
        for gt_index, gt_box in enumerate(ground_truth):
            if matched[gt_index]:
                continue
            iou = iou_fn(prediction, gt_box)
            if iou > best_iou:
                best_iou, best_gt = iou, gt_index
        if best_gt >= 0 and best_iou >= iou_threshold:
            matched[best_gt] = True
            tp_flags[rank] = True
    return tp_flags, scores, len(ground_truth)


def average_precision(
    tp_flags: np.ndarray, num_ground_truth: int, num_points: int = 40
) -> float:
    """Interpolated AP (KITTI-style 40-point) from ordered TP flags."""
    if num_ground_truth == 0:
        return 0.0
    if len(tp_flags) == 0:
        return 0.0
    tp_cum = np.cumsum(tp_flags)
    fp_cum = np.cumsum(~tp_flags)
    recall = tp_cum / num_ground_truth
    precision = tp_cum / (tp_cum + fp_cum)
    # Precision envelope (monotone non-increasing from the right).
    envelope = np.maximum.accumulate(precision[::-1])[::-1]
    samples = np.linspace(0.0, 1.0, num_points + 1)[1:]
    total = 0.0
    for sample in samples:
        reachable = recall >= sample
        total += float(envelope[reachable].max()) if reachable.any() else 0.0
    return total / num_points


def evaluate_map(
    frame_predictions: list,
    frame_ground_truth: list,
    iou_threshold: float = 0.5,
    iou_fn=bev_iou,
) -> float:
    """mAP over a list of frames (single-class: AP of pooled detections)."""
    all_flags = []
    all_scores = []
    total_gt = 0
    for predictions, ground_truth in zip(frame_predictions,
                                         frame_ground_truth):
        flags, scores, num_gt = match_detections(
            predictions, ground_truth, iou_threshold, iou_fn
        )
        all_flags.append(flags)
        all_scores.append(scores)
        total_gt += num_gt
    if not all_flags:
        return 0.0
    flags = np.concatenate(all_flags)
    scores = np.concatenate(all_scores)
    order = np.argsort(-scores)
    return average_precision(flags[order], total_gt)
