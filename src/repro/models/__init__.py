"""Detector workloads: specs, functional networks, heads, metrics, zoo."""

from .metrics import (
    average_precision,
    bev_iou,
    evaluate_map,
    iou_3d,
    match_detections,
    polygon_intersection_area,
)
from .centerpoint import (
    MiniCenterPoint,
    center_loss,
    decode_centers,
    gaussian_heatmap_targets,
)
from .pillarnet import SparseBackboneRunner, SparseLayerRecord, SparseRunResult
from .pointpillars import (
    BOX_DIM,
    DetectionTargets,
    MiniPointPillars,
    build_targets,
    decode_detections,
    detection_loss,
)
from .specs import (
    SPARSE_MODELS,
    TABLE1_MODELS,
    LayerOp,
    LayerSpec,
    ModelSpec,
    build_model_spec,
)
from .zoo import TABLE1_PAPER, PaperRow, grid_for, load_model, scene_config_for

__all__ = [
    "BOX_DIM",
    "SPARSE_MODELS",
    "TABLE1_MODELS",
    "TABLE1_PAPER",
    "DetectionTargets",
    "LayerOp",
    "LayerSpec",
    "MiniCenterPoint",
    "MiniPointPillars",
    "ModelSpec",
    "PaperRow",
    "SparseBackboneRunner",
    "SparseLayerRecord",
    "SparseRunResult",
    "average_precision",
    "bev_iou",
    "build_model_spec",
    "build_targets",
    "center_loss",
    "decode_centers",
    "gaussian_heatmap_targets",
    "decode_detections",
    "detection_loss",
    "evaluate_map",
    "grid_for",
    "iou_3d",
    "load_model",
    "match_detections",
    "polygon_intersection_area",
    "scene_config_for",
]
