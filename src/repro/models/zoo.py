"""Model zoo: Table I registry with the paper's published numbers.

Maps every Table I row to its workload spec, the scene configuration that
feeds it, and the values the paper reports — so benchmarks can print
paper-vs-measured side by side (EXPERIMENTS.md consumes this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.grids import KITTI_GRID, NUSCENES_FINE_GRID, NUSCENES_GRID
from ..data.synthetic import KITTI_SCENE, SceneConfig, nuscenes_scene_config
from .specs import build_model_spec


@dataclass(frozen=True)
class PaperRow:
    """One Table I row as published."""

    model: str
    backbone: str
    head: str
    avg_gops: float
    sparsity_pct: float     # computation savings vs. the dense counterpart
    accuracy: float         # mAP(BEV) for KITTI, mAP for nuScenes
    accuracy_metric: str


#: Table I, verbatim from the paper.
TABLE1_PAPER = {
    "PP": PaperRow("PP", "Conv2D", "Conv2D", 46.43, 0.0, 87.42, "mAP(BEV)"),
    "SPP1": PaperRow("SPP1", "SpConv", "Conv2D", 20.33, 56.2, 87.34, "mAP(BEV)"),
    "SPP2": PaperRow("SPP2", "SpConv-P", "Conv2D", 12.30, 73.5, 86.99, "mAP(BEV)"),
    "SPP3": PaperRow("SPP3", "SpConv-S", "Conv2D", 5.01, 89.2, 83.11, "mAP(BEV)"),
    "CP": PaperRow("CP", "Conv2D", "Conv2D", 63.99, 0.0, 50.79, "mAP"),
    "SCP1": PaperRow("SCP1", "SpConv", "Conv2D", 40.76, 36.3, 50.54, "mAP"),
    "SCP2": PaperRow("SCP2", "SpConv-P", "SpConv-P", 24.77, 61.3, 50.12, "mAP"),
    "SCP3": PaperRow("SCP3", "SpConv-S", "SpConv-P", 13.60, 78.8, 47.78, "mAP"),
    "PN-Dense": PaperRow("PN-Dense", "Conv2D", "Conv2D", 596.51, 0.0, 59.58,
                         "mAP"),
    "PN": PaperRow("PN", "SpConv-S enc", "Conv2D", 284.09, 52.4, 59.58, "mAP"),
    "SPN": PaperRow("SPN", "SpConv-S", "Conv2D", 160.27, 73.1, 57.92, "mAP"),
}


def scene_config_for(model_name: str) -> SceneConfig:
    """The synthetic scene family feeding each benchmark model."""
    if model_name in ("PP", "SPP1", "SPP2", "SPP3"):
        return KITTI_SCENE
    if model_name in ("PN-Dense", "PN", "SPN"):
        return nuscenes_scene_config(NUSCENES_FINE_GRID)
    return nuscenes_scene_config(NUSCENES_GRID)


def grid_for(model_name: str):
    """Pillar grid used by each model."""
    if model_name in ("PP", "SPP1", "SPP2", "SPP3"):
        return KITTI_GRID
    if model_name in ("PN-Dense", "PN", "SPN"):
        return NUSCENES_FINE_GRID
    return NUSCENES_GRID


def load_model(model_name: str):
    """(spec, scene config, grid, paper row) for one Table I model."""
    return (
        build_model_spec(model_name),
        scene_config_for(model_name),
        grid_for(model_name),
        TABLE1_PAPER[model_name],
    )
