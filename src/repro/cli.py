"""``repro`` — the command-line front-end for the simulation engine.

Experiments are declarative :class:`~repro.engine.spec.ExperimentSpec`
JSON files; this module is the thin shell over the engine that runs
them and inspects the registries:

* ``repro run spec.json [--backend process] [--out results.csv]``
  — load, validate and execute a spec, writing the resulting
  :class:`~repro.engine.ExperimentTable` as CSV/JSON (``--out -`` for
  stdout, no ``--out`` for a formatted text table); file sinks get a
  :class:`~repro.engine.manifest.RunManifest` written next to them
  (``results.manifest.json``), and the manifest path is echoed on
  stderr; ``--journal`` write-ahead-logs each completed work group and
  ``--resume`` restarts an interrupted journaled run, skipping the
  units already on disk (the stitched output is byte-identical to an
  uninterrupted run);
* ``repro journal inspect run.journal``
  — show a run journal's header, completed units, and any recovered
  torn tail;
* ``repro report results.json [--html] [--out PATH]``
  — render a run's table + manifest as text or a single-file HTML
  report (``--diff other.json`` compares two runs); see
  :mod:`repro.report`;
* ``repro list simulators|models|backends|frame-providers``
  — enumerate what the registries and the Table I zoo offer;
* ``repro list scenarios spec.json``
  — the scenario axis of one spec file;
* ``repro describe <name>`` — details on a simulator spec string, a
  Table I model, a backend, a frame provider, or a spec file;
* ``repro worker --connect HOST:PORT``
  — serve a distributed coordinator (the ``--backend dist`` run on the
  other end) until it shuts the worker down;
* ``repro serve`` and its clients ``repro submit spec.json
  [--priority N] [--wait]``, ``repro status [run-id]``,
  ``repro results <run-id> [--out X]``, ``repro cancel <run-id>``,
  ``repro queue``
  — the persistent experiment service: one daemon owns a durable
  priority run queue and a worker fleet reused across runs, with every
  submission recorded under ``runs/<run-id>/`` (see ``docs/service.md``);
* ``repro cache stats|clear``
  — inspect or empty the trace-artifact store
  (``REPRO_TRACE_CACHE_DIR`` or ``--cache-dir``) that distributed and
  process runs share traces through.

Everything resolves through the same code paths the Python API uses —
the simulator/backend/provider registries and the
:class:`~repro.engine.settings.EngineSettings` environment resolver —
so a spec run from the shell is bit-identical to the equivalent
hand-built :class:`~repro.engine.ExperimentRunner` (a tested parity
contract).  Third-party plugins registered at import time appear in
``repro list`` automatically.

Exit codes: 0 success, 2 usage/validation error (bad spec, unknown
name), 1 unexpected failure.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .analysis.report import format_results, format_table
from .engine.manifest import (
    RunManifest,
    RunObserver,
    manifest_path_for,
)
from .engine.registry import BACKENDS, FRAME_PROVIDERS, SIMULATORS
from .engine.simulators import build_simulator
from .engine.spec import ExperimentSpec
from .models.specs import build_model_spec
from .models.zoo import TABLE1_PAPER

#: ``repro list`` categories backed by a registry.
_REGISTRY_CATEGORIES = {
    "simulators": SIMULATORS,
    "backends": BACKENDS,
    "frame-providers": FRAME_PROVIDERS,
}

_LIST_CATEGORIES = tuple(_REGISTRY_CATEGORIES) + ("models", "scenarios")


def _out(text: str = "") -> None:
    print(text)


def _status(text: str) -> None:
    """Progress/summary chatter — stderr, so ``--out -`` stays clean."""
    print(text, file=sys.stderr)


# ---------------------------------------------------------------------------
# repro run
# ---------------------------------------------------------------------------


def _infer_format(out: str, explicit: str) -> str:
    if explicit:
        return explicit
    suffix = Path(out).suffix.lower()
    if suffix == ".csv":
        return "csv"
    if suffix == ".json":
        return "json"
    raise ValueError(
        f"cannot infer output format from {out!r}; use a .csv/.json "
        f"path or pass --format csv|json"
    )


def _check_writable_sink(out) -> None:
    """Reject an unusable output path with an actionable message.

    Run *before* the sweep (and again implicitly by the OSError wrap
    around the writes), so a mistyped ``--out`` directory fails in
    milliseconds instead of after minutes of simulation.
    """
    parent = Path(out).expanduser().resolve().parent
    if not parent.is_dir():
        raise ValueError(
            f"output directory {parent} does not exist; create it or "
            f"pick another --out path"
        )
    if not os.access(parent, os.W_OK):
        raise ValueError(
            f"output directory {parent} is not writable; fix its "
            f"permissions or pick another --out path"
        )


def _emit_table(table, out, fmt: str) -> None:
    if out is None:
        _out(format_results(table.results, title=f"{len(table)} rows"))
        return
    if out == "-":
        text = table.to_csv() if (fmt or "csv") == "csv" \
            else table.to_json()
        sys.stdout.write(text)
        return
    fmt = _infer_format(out, fmt)
    if fmt == "csv":
        table.to_csv(path=out)
    else:
        table.to_json(path=out)
    _status(f"wrote {len(table)} rows to {out} ({fmt})")


def _run_journal(args):
    """Resolve ``--journal``/``--resume`` into a RunJournal (or None).

    ``--journal`` insists on a fresh file (an existing non-empty one is
    almost always a forgotten ``--resume``); ``--resume`` is
    resume-or-create, so retry loops and CI can pass it unconditionally.
    """
    if args.journal is not None and args.resume is not None:
        raise ValueError(
            "pass --journal (fresh run) or --resume (continue one), "
            "not both"
        )
    if args.journal is not None:
        path = Path(args.journal)
        if path.exists() and path.stat().st_size > 0:
            raise ValueError(
                f"journal {args.journal!r} already exists; continue "
                f"that run with --resume {args.journal}, or remove the "
                f"file to start over"
            )
    target = args.resume if args.resume is not None else args.journal
    if target is None:
        return None
    from .engine.journal import RunJournal

    return RunJournal(target)


def _cmd_run(args) -> int:
    spec = ExperimentSpec.load(args.spec)
    overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("workers", args.workers),
            ("trace_workers", args.trace_workers),
            ("rulegen_shards", args.rulegen_shards),
            ("cache_dir", args.cache_dir),
            ("delta_trace", args.delta_trace),
            ("delta_threshold", args.delta_threshold),
            ("faults", args.faults),
            ("degrade", args.degrade),
        )
        if value is not None
    }
    journal = _run_journal(args)
    # Fail on an unusable sink *before* the (possibly long) run, not
    # after the table is already computed.
    out = args.out if args.out is not None else spec.out
    to_file = out is not None and out != "-"
    if to_file:
        _infer_format(out, args.format)
        _check_writable_sink(out)
    runner = spec.build_runner(**overrides)
    backend = runner.backend
    backend_name = backend if isinstance(backend, str) else backend.name
    _status(
        f"{spec.name}: {len(runner.scenarios)} scenario(s) x "
        f"{len(runner.models)} model(s) x "
        f"{len(runner.simulators)} simulator(s) "
        f"on the {backend_name} backend"
    )
    observer = RunObserver() if to_file else None
    from .engine import telemetry
    from .engine.settings import TelemetrySettings

    # --trace-out implies tracing on; REPRO_ENGINE_TELEMETRY=1 alone
    # traces (manifest span counts) without writing an export file.
    tel = TelemetrySettings.resolve(
        enabled=(True if args.trace_out is not None else None),
        trace_out=args.trace_out,
    )
    tracer = (telemetry.SpanTracer(process="runner")
              if tel.enabled or tel.trace_out is not None else None)
    with telemetry.tracing(tracer):
        table = runner.run(progress=args.progress, observer=observer,
                           journal=journal)
        if journal is not None:
            done = journal.summary()
            _status(
                f"journal {done['path']}: resumed {done['resumed_units']} "
                f"unit(s), appended {done['appended_units']}"
            )
        try:
            _emit_table(table, out, args.format)
            if to_file:
                manifest = RunManifest.collect(runner, table,
                                               observer=observer,
                                               journal=journal)
                manifest_path = manifest.write(manifest_path_for(out))
                _status(f"wrote run manifest to {manifest_path}")
        except OSError as error:
            raise ValueError(
                f"cannot write results to {out!r}: {error}; pick a "
                f"writable --out path"
            ) from None
    if tracer is not None and tel.trace_out is not None:
        try:
            _status(f"wrote Chrome trace to {tracer.export(tel.trace_out)}")
        except OSError as error:
            raise ValueError(
                f"cannot write trace to {tel.trace_out!r}: {error}; "
                f"pick a writable --trace-out path"
            ) from None
    return 0


# ---------------------------------------------------------------------------
# repro report
# ---------------------------------------------------------------------------


def _report_out_path(out: str, results: str, as_html: bool) -> Path:
    """Resolve ``--out``: an existing directory (or a path spelled with
    a trailing separator) gets ``<results-stem>.report.html|txt``
    inside it; anything else is the report file itself."""
    path = Path(out)
    if path.is_dir() or out.endswith(os.sep):
        suffix = ".html" if as_html else ".txt"
        return path / (Path(results).stem + ".report" + suffix)
    return path


def _cmd_report(args) -> int:
    from .report import build_report

    text = build_report(
        args.results,
        manifest_path=args.manifest,
        diff_path=args.diff,
        as_html=args.html,
        baseline=args.baseline,
    )
    if args.out is None or args.out == "-":
        sys.stdout.write(text)
        return 0
    path = _report_out_path(args.out, args.results, args.html)
    try:
        path.write_text(text)
    except OSError as error:
        raise ValueError(
            f"cannot write report to {path}: {error}; pick a writable "
            f"--out path"
        ) from None
    _status(f"wrote report to {path}")
    return 0


# ---------------------------------------------------------------------------
# repro worker
# ---------------------------------------------------------------------------


def _cmd_worker(args) -> int:
    from .engine.dist import Worker
    from .engine.settings import UNSET

    worker = Worker(
        args.connect,
        worker_id=args.worker_id,
        cache_dir=args.cache_dir if args.cache_dir is not None else UNSET,
        retry_seconds=args.retry_seconds,
        max_units=args.max_units,
        reconnect_seconds=args.reconnect_seconds,
    )
    return worker.run()


# ---------------------------------------------------------------------------
# repro serve / submit / status / results / cancel / queue
# ---------------------------------------------------------------------------


def _cmd_serve(args) -> int:
    import signal

    from .engine import telemetry
    from .engine.service import ExperimentService
    from .engine.settings import ServiceSettings, TelemetrySettings

    settings = ServiceSettings.resolve(
        host=args.host,
        port=args.port,
        store_dir=args.store,
        max_inflight=args.max_inflight,
        submitter_cap=args.submitter_cap,
        drain_timeout=args.drain_timeout,
    )
    tel = TelemetrySettings.resolve(metrics_port=args.metrics_port)
    service = ExperimentService(settings)
    try:
        service.start()
    except Exception as error:  # noqa: BLE001 — bind errors are usage errors
        raise ValueError(f"cannot start the experiment service: {error}") \
            from None
    metrics_server = None
    if tel.metrics_port is not None:
        try:
            metrics_server = telemetry.serve_metrics(tel.metrics_port)
        except OSError as error:
            service.stop(drain=False)
            raise ValueError(
                f"cannot bind the metrics endpoint on port "
                f"{tel.metrics_port}: {error}"
            ) from None
        _status(
            f"Prometheus metrics on http://127.0.0.1:"
            f"{metrics_server.server_address[1]}/metrics"
        )
    _status(
        f"experiment service on {settings.host}:{service.port} "
        f"(store {settings.store_dir}, max_inflight "
        f"{settings.max_inflight}); stop with SIGTERM"
    )
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: service.request_stop())
    try:
        return service.serve_forever()
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()


def _service_client(args):
    from .engine.service import ServiceClient

    return ServiceClient(host=args.host, port=args.port)


def _service_call(call):
    """Run one client call, mapping service/socket errors to exit 2."""
    from .engine.service import ServiceError

    try:
        return call()
    except ServiceError as error:
        raise ValueError(f"service: {error}") from None
    except OSError as error:
        raise ValueError(
            f"cannot reach the experiment service: {error}; is "
            f"`repro serve` running?"
        ) from None


def _cmd_submit(args) -> int:
    spec = ExperimentSpec.load(args.spec).to_dict()
    client = _service_client(args)
    state = _service_call(lambda: client.submit(
        spec, priority=args.priority, submitter=args.submitter,
    ))
    run_id = state["run"]
    _status(f"queued {run_id} (priority {state['priority']})")
    _out(run_id)
    if not args.wait:
        return 0
    final = _service_call(lambda: client.wait(run_id))
    _status(f"{run_id}: {final['state']}")
    return 0 if final["state"] == "done" else 1


def _print_run_state(state: dict) -> None:
    _out(f"run {state.get('run')}")
    for key in ("state", "priority", "submitter", "submitted_at",
                "running_at", "done_at", "failed_at", "cancelled_at",
                "interrupted_at", "rows", "resumed_units",
                "appended_units", "unit_seconds", "error"):
        if state.get(key) is not None:
            _out(f"  {key:<14}: {state[key]}")


def _counter_total(metrics: dict, name: str) -> int:
    """Sum one counter across its label series in a metrics snapshot."""
    series = (metrics.get("counters") or {}).get(name) or []
    return int(sum(entry.get("value") or 0 for entry in series))


def _fleet_lines(reply: dict, metrics: dict = None) -> list:
    """The service summary as display lines.

    One renderer behind both ``repro status`` (printed once) and
    ``repro top`` (reprinted per refresh): worker roster, inflight
    runs, the dispatch-ordered queue, and — when a metrics snapshot is
    supplied — the fleet counters.
    """
    service = reply.get("service") or {}
    queue = reply.get("queue") or {}
    workers = reply.get("workers") or []
    lines = [
        f"experiment service {service.get('host')}:{service.get('port')} "
        f"(store {service.get('store_dir')})"
        + (" [draining]" if service.get("draining") else ""),
        "",
        f"workers ({len(workers)}):",
    ]
    if workers:
        lines.append(f"  {'worker':<24} {'pid':>8}  inflight")
        for entry in workers:
            lines.append(
                f"  {str(entry.get('worker')):<24} "
                f"{str(entry.get('pid') or '-'):>8}  "
                f"{entry.get('inflight') or '-'}"
            )
    else:
        lines.append("  (none connected)")
    inflight = queue.get("inflight") or []
    lines.append("")
    lines.append(
        f"inflight runs ({len(inflight)}/{queue.get('max_inflight')}): "
        f"{', '.join(inflight) or '-'}"
    )
    queued = queue.get("queued") or []
    lines.append(f"queued ({len(queued)}):")
    for entry in queued:
        note = "" if entry.get("ready") else " [submitter at cap]"
        lines.append(
            f"  {entry['run']}  priority {entry['priority']:<3} "
            f"{entry['submitter']}{note}"
        )
    if metrics is not None:
        lines.append("")
        lines.append(
            f"rows streamed {_counter_total(metrics, 'repro_rows_streamed_total')}"
            f" | heartbeats {_counter_total(metrics, 'repro_heartbeats_total')}"
            f" | requeues {_counter_total(metrics, 'repro_requeues_total')}"
            f" | cache gets {_counter_total(metrics, 'repro_cache_gets_total')}"
        )
    return lines


def _follow_summary(client, interval: float) -> int:
    """Refresh the service summary until interrupted (``--follow``)."""
    import time as _time

    while True:
        reply = _service_call(client.status)
        try:
            metrics = _service_call(client.metrics)
        except ValueError:
            metrics = None
        sys.stdout.write("\x1b[2J\x1b[H")
        _out("\n".join(_fleet_lines(reply, metrics)))
        sys.stdout.flush()
        try:
            _time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def _cmd_status(args) -> int:
    client = _service_client(args)
    if args.run is None:
        if args.follow:
            try:
                return _follow_summary(client, interval=2.0)
            except KeyboardInterrupt:
                return 0
        reply = _service_call(client.status)
        _out("\n".join(_fleet_lines(reply)))
        return 0
    if args.wait:
        state = _service_call(lambda: client.wait(args.run))
    else:
        state = _service_call(lambda: client.status(args.run))
    _print_run_state(state)
    return 0


def _cmd_top(args) -> int:
    client = _service_client(args)
    if args.once:
        reply = _service_call(client.status)
        try:
            metrics = _service_call(client.metrics)
        except ValueError:
            metrics = None
        _out("\n".join(_fleet_lines(reply, metrics)))
        return 0
    try:
        return _follow_summary(client, interval=args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_results(args) -> int:
    client = _service_client(args)
    reply = _service_call(lambda: client.results(args.run))
    if args.out is None or args.out == "-":
        sys.stdout.write(reply["csv"])
        return 0
    fmt = _infer_format(args.out, args.format)
    _check_writable_sink(args.out)
    # The stored text is written verbatim, so a fetched table is
    # byte-identical to the file the service wrote.
    Path(args.out).write_text(reply["csv" if fmt == "csv" else "json"])
    _status(f"wrote {args.run} results to {args.out} ({fmt})")
    if reply.get("manifest"):
        manifest_path = manifest_path_for(args.out)
        Path(manifest_path).write_text(reply["manifest"])
        _status(f"wrote run manifest to {manifest_path}")
    return 0


def _cmd_cancel(args) -> int:
    client = _service_client(args)
    state = _service_call(lambda: client.cancel(args.run))
    _status(f"{args.run}: {state.get('state')}")
    return 0


def _cmd_queue(args) -> int:
    client = _service_client(args)
    reply = _service_call(client.queue)
    inflight = reply.get("inflight") or []
    _out(f"inflight ({len(inflight)}/{reply.get('max_inflight')}): "
         f"{', '.join(inflight) or '-'}")
    queued = reply.get("queued") or []
    _out(f"queued ({len(queued)}):")
    for entry in queued:
        note = "" if entry.get("ready") else " [submitter at cap]"
        _out(f"  {entry['run']}  priority {entry['priority']:<3} "
             f"{entry['submitter']}{note}")
    return 0


# ---------------------------------------------------------------------------
# repro journal
# ---------------------------------------------------------------------------


def _cmd_journal(args) -> int:
    from .engine.journal import read_journal

    try:
        info = read_journal(args.path)
    except FileNotFoundError:
        raise ValueError(
            f"no journal at {args.path!r}; journals are written by "
            f"`repro run --journal/--resume`"
        ) from None
    header = info["header"]
    _out(f"run journal {args.path}")
    _out(f"  name        : {header.get('name')}")
    _out(f"  spec_hash   : {header.get('spec_hash')}")
    units = info["units"]
    _out(f"  completed   : {len(units)} unit(s)")
    if args.timings:
        # The seconds column totals to the run's unit_seconds — the
        # same number `repro status <run>` reports from the service.
        _out(f"  {'unit':<24}  {'rows':>6}  {'seconds':>9}  worker")
        total = 0.0
        for record in units:
            seconds = float(record.get("seconds") or 0.0)
            total += seconds
            _out(f"  {record.get('unit'):<24}  "
                 f"{len(record.get('rows') or []):>6}  "
                 f"{seconds:>9.2f}  {record.get('worker') or '-'}")
        _out(f"  {'total':<24}  {'':>6}  {total:>9.2f}")
    else:
        for record in units:
            rows = record.get("rows") or []
            line = f"  {record.get('unit'):<24}: {len(rows)} row(s)"
            seconds = record.get("seconds")
            if seconds is not None:
                line += f", {seconds:.2f}s"
            worker = record.get("worker")
            if worker:
                line += f" on {worker}"
            _out(line)
    if info["dropped"]:
        _out(f"  dropped     : {info['dropped']} invalid line(s) "
             f"(skipped on resume)")
    if info["torn_bytes"]:
        _out(f"  torn tail   : {info['torn_bytes']} byte(s) of a "
             f"half-written record (truncated on resume)")
    return 0


# ---------------------------------------------------------------------------
# repro cache
# ---------------------------------------------------------------------------


def _format_bytes(count: int) -> str:
    value = float(count)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or suffix == "GiB":
            return (f"{count} B" if suffix == "B"
                    else f"{value:.1f} {suffix}")
        value /= 1024
    return f"{count} B"


def _cmd_cache(args) -> int:
    from .engine.cache import (
        clear_disk_tier,
        scan_disk_tier,
        shared_trace_cache,
    )
    from .engine.settings import resolve_cache_dir

    cache_dir = (args.cache_dir if args.cache_dir is not None
                 else resolve_cache_dir())
    if args.action == "stats":
        memory = shared_trace_cache().stats()
        _out("memory tier (this process)")
        _out(f"  entries     : {memory['entries']}")
        _out(f"  hits/misses : {memory['hits']}/{memory['misses']}")
        _out(f"  disk hits   : {memory['disk_hits']} "
             f"(writes {memory['disk_writes']})")
        if memory.get("quarantined"):
            _out(f"  quarantined : {memory['quarantined']} corrupt "
                 f"artifact(s) sidelined")
        for (scenario, model), count in sorted(
                memory.get("by_label", {}).items()):
            _out(f"  {scenario}/{model:<12}: {count} entries")
        if cache_dir is None:
            _out("disk tier")
            _out("  disabled    : set REPRO_TRACE_CACHE_DIR or pass "
                 "--cache-dir")
            return 0
        disk = scan_disk_tier(cache_dir, detail=True)
        _out(f"disk tier ({disk['dir']})")
        _out(f"  artifacts   : {disk['entries']}")
        _out(f"  size        : {_format_bytes(disk['bytes'])}")
        if disk.get("quarantined"):
            _out(f"  quarantined : {disk['quarantined']} corrupt "
                 f"artifact(s) awaiting cleanup")
        for group in disk.get("models", []):
            _out(f"  {group['model']:<12}: {group['entries']} frame(s), "
                 f"{_format_bytes(group['bytes'])} "
                 f"[{group['fingerprint']}]")
        return 0
    # clear
    if cache_dir is None:
        raise ValueError(
            "no trace cache directory to clear: set "
            "REPRO_TRACE_CACHE_DIR or pass --cache-dir"
        )
    removed = clear_disk_tier(cache_dir)
    shared_trace_cache().clear()
    _status(
        f"removed {removed['entries']} trace artifact(s) "
        f"({_format_bytes(removed['bytes'])}) from {removed['dir']}"
    )
    return 0


# ---------------------------------------------------------------------------
# repro list
# ---------------------------------------------------------------------------


def _list_registry(registry) -> None:
    for name in registry.names():
        summary = registry.describe(name)
        _out(f"{name:16} {summary}" if summary else name)


def _list_models() -> None:
    rows = [
        (row.model, row.backbone, row.head, row.avg_gops,
         row.sparsity_pct)
        for row in TABLE1_PAPER.values()
    ]
    _out(format_table(
        ["model", "backbone", "head", "paper GOPs", "paper savings %"],
        rows,
        title="Table I model zoo",
    ))


def _list_scenarios(spec_path) -> None:
    if spec_path is None:
        raise ValueError(
            "scenarios live in spec files; usage: "
            "repro list scenarios <spec.json>"
        )
    spec = ExperimentSpec.load(spec_path)
    rows = [(s.name, s.seed, s.frames) for s in spec.scenarios]
    _out(format_table(["scenario", "seed", "frames"], rows,
                      title=f"scenarios of {spec.name!r}"))


def _cmd_list(args) -> int:
    if args.category == "models":
        _list_models()
    elif args.category == "scenarios":
        _list_scenarios(args.spec)
    else:
        _list_registry(_REGISTRY_CATEGORIES[args.category])
    return 0


# ---------------------------------------------------------------------------
# repro describe
# ---------------------------------------------------------------------------


def _first_doc_line(obj) -> str:
    doc = (getattr(obj, "__doc__", None) or "").strip()
    return doc.splitlines()[0] if doc else ""


def _describe_simulator(name: str) -> bool:
    try:
        simulator = build_simulator(name)
    except (ValueError, KeyError):
        return False
    _out(f"simulator spec {name!r}")
    _out(f"  resolves to : {type(simulator).__name__} "
         f"(name {simulator.name!r})")
    summary = _first_doc_line(type(simulator))
    if summary:
        _out(f"  about       : {summary}")
    family = name.strip().lower().partition(":")[0].split("-")[0]
    if family in SIMULATORS:
        _out(f"  family      : {family} — {SIMULATORS.describe(family)}")
    return True


def _describe_model(name: str) -> bool:
    if name not in TABLE1_PAPER:
        return False
    row = TABLE1_PAPER[name]
    spec = build_model_spec(name)
    _out(f"model {name!r} (Table I)")
    _out(f"  backbone    : {row.backbone}   head: {row.head}")
    _out(f"  paper       : {row.avg_gops} GOPs, "
         f"{row.sparsity_pct}% savings, "
         f"{row.accuracy} {row.accuracy_metric}")
    _out(f"  grid        : {spec.grid.name} {spec.grid.shape}")
    _out(f"  layers      : {len(spec.layers)}")
    return True


def _describe_registry_entry(name: str) -> bool:
    for label, registry in (("backend", BACKENDS),
                            ("frame provider", FRAME_PROVIDERS)):
        if name in registry:
            _out(f"{label} {name!r}")
            summary = registry.describe(name)
            if summary:
                _out(f"  about       : {summary}")
            return True
    return False


def _describe_spec_file(name: str) -> bool:
    path = Path(name)
    if path.suffix.lower() != ".json" or not path.exists():
        return False
    spec = ExperimentSpec.load(path)
    settings = spec.settings()
    _out(f"experiment spec {spec.name!r} ({path})")
    _out(f"  simulators  : {[str(s) for s in spec.simulators]}")
    _out(f"  models      : {list(spec.models)}")
    _out(f"  scenarios   : "
         f"{[(s.name, s.seed, s.frames) for s in spec.scenarios]}")
    _out(f"  resolved    : backend={settings.backend} "
         f"workers={settings.workers} "
         f"trace_workers={settings.trace_workers} "
         f"rulegen_shards={settings.rulegen_shards} "
         f"delta_trace={settings.delta_trace}")
    _out(f"  cache_dir   : {settings.cache_dir}")
    if spec.cells:
        _out(f"  cells       : {spec.cells}")
    return True


def _cmd_describe(args) -> int:
    name = args.name
    for describe in (_describe_spec_file, _describe_model,
                     _describe_simulator, _describe_registry_entry):
        if describe(name):
            return 0
    raise ValueError(
        f"nothing named {name!r}: not a simulator spec string "
        f"(families: {SIMULATORS.names()}), a Table I model "
        f"({sorted(TABLE1_PAPER)}), a backend ({BACKENDS.names()}), a "
        f"frame provider ({FRAME_PROVIDERS.names()}), or a spec file"
    )


# ---------------------------------------------------------------------------
# parser / entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run and inspect declarative SPADE-engine "
                    "experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute an experiment spec JSON file"
    )
    run.add_argument("spec", help="path to an ExperimentSpec .json file")
    run.add_argument("--backend",
                     help="override the spec's execution backend")
    run.add_argument("--workers", help="simulate-stage pool width")
    run.add_argument("--trace-workers", dest="trace_workers",
                     help="trace-stage pool width")
    run.add_argument("--rulegen-shards", dest="rulegen_shards",
                     help="rulegen row bands")
    run.add_argument("--cache-dir", dest="cache_dir",
                     help="persistent trace-cache directory")
    run.add_argument("--delta-trace", dest="delta_trace",
                     help="trace sequential frames as delta chains "
                          "(1/0, default REPRO_ENGINE_DELTA_TRACE)")
    run.add_argument("--delta-threshold", dest="delta_threshold",
                     help="changed-input fraction above which delta "
                          "tracing falls back to full rulegen "
                          "(default REPRO_ENGINE_DELTA_THRESHOLD)")
    run.add_argument("--faults", dest="faults",
                     help="deterministic fault-injection plan for chaos "
                          "testing, e.g. 'kill_worker:unit=2' "
                          "(default REPRO_ENGINE_FAULTS)")
    run.add_argument("--degrade", dest="degrade",
                     help="fall back dist->process->serial when the "
                          "chosen backend cannot start (1/0, default "
                          "REPRO_ENGINE_DEGRADE)")
    run.add_argument("--journal", metavar="PATH",
                     help="write-ahead-log each completed work group "
                          "here; the file must not already hold a run "
                          "(continue one with --resume)")
    run.add_argument("--resume", metavar="PATH",
                     help="resume (or start) a journaled run: units "
                          "already in PATH are skipped and their rows "
                          "stitched into the output byte-identically")
    run.add_argument("--out",
                     help="result sink: a .csv/.json path, or '-' for "
                          "stdout (default: the spec's `out`, else a "
                          "formatted table)")
    run.add_argument("--format", choices=("csv", "json"),
                     help="output format for --out (inferred from the "
                          "file suffix when omitted; '-' defaults to "
                          "csv)")
    run.add_argument("--trace-out", dest="trace_out", metavar="PATH",
                     help="trace the run and write a Chrome trace-event "
                          "JSON timeline here (open it in Perfetto); "
                          "implies REPRO_ENGINE_TELEMETRY=1")
    run.add_argument("--progress", action="store_true",
                     help="print per-group completion (done/total, "
                          "elapsed) to stderr while the sweep runs")
    run.set_defaults(func=_cmd_run)

    report = commands.add_parser(
        "report",
        help="render a run's results + manifest as text or a "
             "single-file HTML report",
    )
    report.add_argument("results",
                        help="a `repro run --out` .json result file")
    report.add_argument("--html", action="store_true",
                        help="emit a self-contained HTML report "
                             "instead of text")
    report.add_argument("--out",
                        help="write the report here: a file path, or "
                             "an existing directory (gets "
                             "<results>.report.html/.txt); default "
                             "stdout")
    report.add_argument("--manifest",
                        help="explicit run-manifest path (default: "
                             "the results.manifest.json next to the "
                             "table, when present)")
    report.add_argument("--diff", metavar="OTHER",
                        help="compare against a second result .json: "
                             "metric deltas joined on (scenario, "
                             "frame, model, simulator) plus a "
                             "manifest-field diff")
    report.add_argument("--baseline",
                        help="simulator the fig9 speedups are "
                             "relative to (default: a dense-family "
                             "simulator, else the table's first)")
    report.set_defaults(func=_cmd_report)

    worker = commands.add_parser(
        "worker",
        help="serve a distributed coordinator (`repro run --backend "
             "dist` on the other end)",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to pull work from")
    worker.add_argument("--id", dest="worker_id",
                        help="worker name in coordinator logs "
                             "(default: hostname:pid)")
    worker.add_argument("--cache-dir", dest="cache_dir",
                        help="trace-artifact directory override "
                             "(default: what the coordinator announces, "
                             "else REPRO_TRACE_CACHE_DIR)")
    worker.add_argument("--retry-seconds", dest="retry_seconds",
                        type=float, default=30.0,
                        help="keep retrying the initial connection this "
                             "long, so workers can start before the "
                             "coordinator (default: 30)")
    worker.add_argument("--max-units", dest="max_units", type=int,
                        help="exit cleanly after N units (drain mode)")
    worker.add_argument("--reconnect-seconds", dest="reconnect_seconds",
                        type=float, default=0.0,
                        help="after losing an established connection, "
                             "keep re-dialling this long — survives a "
                             "coordinator restart, e.g. a run resumed "
                             "with --resume (default: 0 = exit)")
    worker.set_defaults(func=_cmd_worker)

    serve = commands.add_parser(
        "serve",
        help="run the persistent experiment service (durable run "
             "queue + shared worker fleet)",
    )
    serve.add_argument("--host",
                       help="bind address (default "
                            "REPRO_ENGINE_SERVICE_HOST)")
    serve.add_argument("--port", help="TCP port, 0 for ephemeral "
                                      "(default REPRO_ENGINE_SERVICE_PORT)")
    serve.add_argument("--store",
                       help="run-store root directory (default "
                            "REPRO_ENGINE_SERVICE_DIR, else ./runs)")
    serve.add_argument("--max-inflight", dest="max_inflight",
                       help="concurrently executing runs (default "
                            "REPRO_ENGINE_SERVICE_MAX_INFLIGHT)")
    serve.add_argument("--submitter-cap", dest="submitter_cap",
                       help="per-submitter inflight cap (default "
                            "REPRO_ENGINE_SERVICE_SUBMITTER_CAP)")
    serve.add_argument("--metrics-port", dest="metrics_port",
                       help="serve Prometheus text exposition at "
                            "http://127.0.0.1:PORT/metrics (0 for an "
                            "ephemeral port; default: no endpoint)")
    serve.add_argument("--drain-timeout", dest="drain_timeout",
                       help="SIGTERM drain budget in seconds (default "
                            "REPRO_ENGINE_SERVICE_DRAIN_TIMEOUT)")
    serve.set_defaults(func=_cmd_serve)

    def _client_flags(parser) -> None:
        """The service-address flags every client verb shares."""
        parser.add_argument("--host",
                            help="service host (default "
                                 "REPRO_ENGINE_SERVICE_HOST)")
        parser.add_argument("--port",
                            help="service port (default "
                                 "REPRO_ENGINE_SERVICE_PORT)")

    submit = commands.add_parser(
        "submit", help="queue an experiment spec on the service"
    )
    submit.add_argument("spec", help="path to an ExperimentSpec .json file")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher dispatches first (default 0)")
    submit.add_argument("--submitter", default="anon",
                        help="fair-share identity (default 'anon')")
    submit.add_argument("--wait", action="store_true",
                        help="block until the run finishes (exit 1 "
                             "unless it completes)")
    _client_flags(submit)
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser(
        "status", help="one run's state, or the service summary"
    )
    status.add_argument("run", nargs="?",
                        help="run id (omit for the service summary)")
    status.add_argument("--follow", action="store_true",
                        help="without a run id: keep the service "
                             "summary refreshing until Ctrl-C (like "
                             "`repro top`)")
    status.add_argument("--wait", action="store_true",
                        help="block until the run reaches a terminal "
                             "state")
    _client_flags(status)
    status.set_defaults(func=_cmd_status)

    results = commands.add_parser(
        "results", help="fetch a finished run's result table"
    )
    results.add_argument("run", help="run id")
    results.add_argument("--out",
                         help="write the stored table here (.csv/.json, "
                              "byte-identical to the service's file; "
                              "default: CSV to stdout)")
    results.add_argument("--format", choices=("csv", "json"),
                         help="output format for --out (inferred from "
                              "the suffix when omitted)")
    _client_flags(results)
    results.set_defaults(func=_cmd_results)

    cancel = commands.add_parser(
        "cancel", help="cancel a queued or inflight run"
    )
    cancel.add_argument("run", help="run id")
    _client_flags(cancel)
    cancel.set_defaults(func=_cmd_cancel)

    queue = commands.add_parser(
        "queue", help="the service's dispatch-ordered run queue"
    )
    _client_flags(queue)
    queue.set_defaults(func=_cmd_queue)

    top = commands.add_parser(
        "top",
        help="live fleet view: refreshing worker roster, queue and "
             "counters from a running service",
    )
    _client_flags(top)
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds (default 2)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (no refresh "
                          "loop; scripts and tests)")
    top.set_defaults(func=_cmd_top)

    journal = commands.add_parser(
        "journal",
        help="inspect a run journal written by `repro run "
             "--journal/--resume`",
    )
    journal.add_argument("action", choices=("inspect",))
    journal.add_argument("path", help="journal file to inspect")
    journal.add_argument("--timings", action="store_true",
                         help="per-unit rows/seconds/worker columns "
                              "plus a total-seconds row")
    journal.set_defaults(func=_cmd_journal)

    cache = commands.add_parser(
        "cache",
        help="inspect or clear the shared trace-artifact store",
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--cache-dir", dest="cache_dir",
                       help="disk-tier directory (default: "
                            "REPRO_TRACE_CACHE_DIR)")
    cache.set_defaults(func=_cmd_cache)

    lister = commands.add_parser(
        "list", help="enumerate registered names"
    )
    lister.add_argument("category", choices=_LIST_CATEGORIES)
    lister.add_argument("spec", nargs="?",
                        help="spec file (required for 'scenarios')")
    lister.set_defaults(func=_cmd_list)

    describe = commands.add_parser(
        "describe",
        help="details on a simulator / model / backend / provider / "
             "spec file",
    )
    describe.add_argument("name")
    describe.set_defaults(func=_cmd_describe)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
