"""``python -m repro`` — the CLI without the installed entry point.

Distributed workers in particular are often launched on hosts where the
package is on ``PYTHONPATH`` but not pip-installed; ``python -m repro
worker --connect HOST:PORT`` is the same as ``repro worker ...``.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
