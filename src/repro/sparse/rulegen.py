"""Reference rule generation for every sparse-convolution variant.

A *rule* is the explicit input-output mapping of a sparse convolution: for
each kernel offset ``k`` it lists which active-input rows contribute to
which active-output rows.  The paper's RGU (Sec. III-B) produces exactly
this structure in hardware; this module is the functional reference the
hardware model is validated against.

Supported operations (paper Fig. 1(c-e) and Fig. 4(a-d)):

* ``SPCONV``     — standard dilating sparse convolution;
* ``SUBM``       — submanifold convolution (SpConv-S), no dilation;
* ``SPCONV_P``   — dilating convolution whose output will be dynamically
  pruned (rules are identical to SPCONV; pruning is a post-pass);
* ``STRIDED``    — sparse strided convolution (SpStConv, downsampling);
* ``DECONV``     — sparse deconvolution (SpDeconv, non-overlapping
  stride=kernel upsampling).

Because inputs are CPR-sorted and every kernel offset shifts all
coordinates by a constant, the per-offset input and output index lists are
automatically ascending — the monotonicity property the RGU, ATM and
conflict-free scatter all rely on (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .coords import (
    dilate,
    downsample_coords,
    flatten,
    kernel_offsets,
    unflatten,
    upsample_coords,
)


class ConvType(Enum):
    """Sparse convolution operation kinds."""

    SPCONV = "spconv"
    SUBM = "subm"
    SPCONV_P = "spconv_p"
    STRIDED = "strided"
    STRIDED_SUBM = "strided_subm"
    DECONV = "deconv"


@dataclass
class RulePairs:
    """Input/output row indices for one kernel offset."""

    in_idx: np.ndarray
    out_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.in_idx)


@dataclass
class Rules:
    """Complete mapping for one sparse convolution layer.

    Attributes:
        conv_type: Operation kind.
        kernel_size: Square kernel edge (2 for DECONV with stride 2).
        stride: Convolution stride (1 for SPCONV/SUBM).
        in_shape / out_shape: Dense grid shapes.
        in_coords / out_coords: CPR-sorted active coordinate arrays.
        pairs: One :class:`RulePairs` per kernel offset, weight-index order.
    """

    conv_type: ConvType
    kernel_size: int
    stride: int
    in_shape: tuple
    out_shape: tuple
    in_coords: np.ndarray
    out_coords: np.ndarray
    pairs: list = field(default_factory=list)

    @property
    def num_inputs(self) -> int:
        return len(self.in_coords)

    @property
    def num_outputs(self) -> int:
        return len(self.out_coords)

    @property
    def total_pairs(self) -> int:
        """Total number of (input, weight, output) mappings = MAC groups."""
        return sum(len(p) for p in self.pairs)

    def macs(self, in_channels: int, out_channels: int) -> int:
        """Multiply-accumulate count of executing this layer sparsely."""
        return self.total_pairs * in_channels * out_channels

    @property
    def iopr(self) -> float:
        """Input-output pillar ratio (paper Fig. 2(d-f) metric)."""
        if self.num_inputs == 0:
            return 0.0
        return self.num_outputs / self.num_inputs


def _lookup_sorted(haystack_flat: np.ndarray, needles_flat: np.ndarray) -> np.ndarray:
    """Indices of needles in a sorted haystack, -1 when absent."""
    if len(haystack_flat) == 0 or len(needles_flat) == 0:
        return np.full(len(needles_flat), -1, dtype=np.int64)
    pos = np.searchsorted(haystack_flat, needles_flat)
    pos = np.clip(pos, 0, len(haystack_flat) - 1)
    found = haystack_flat[pos] == needles_flat
    return np.where(found, pos, -1).astype(np.int64)


def build_rules(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int = 3,
    stride: int = 1,
) -> Rules:
    """Generate the input-output mapping for one sparse convolution layer.

    Args:
        in_coords: (P, 2) CPR-sorted active input coordinates.
        in_shape: Dense input grid shape.
        conv_type: Which sparse convolution variant.
        kernel_size: Kernel edge; DECONV forces ``kernel_size = stride``.
        stride: 1 for SPCONV/SUBM/SPCONV_P; >=2 for STRIDED/DECONV.

    Returns:
        A :class:`Rules` with ascending per-offset index lists.
    """
    in_coords = np.asarray(in_coords, dtype=np.int32)

    if conv_type in (ConvType.SPCONV, ConvType.SPCONV_P):
        if stride != 1:
            raise ValueError("use ConvType.STRIDED for stride > 1")
        out_coords = dilate(in_coords, in_shape, kernel_size)
        out_shape = in_shape
    elif conv_type is ConvType.SUBM:
        if stride != 1:
            raise ValueError("submanifold convolution requires stride 1")
        out_coords = in_coords.copy()
        out_shape = in_shape
    elif conv_type is ConvType.STRIDED:
        if stride < 2:
            raise ValueError("STRIDED requires stride >= 2")
        out_coords, out_shape = downsample_coords(in_coords, in_shape, stride)
    elif conv_type is ConvType.STRIDED_SUBM:
        # Submanifold-style downsampling (SpConv-S models): an output is
        # active only where an input maps directly under the stride, so
        # no spatial dilation is introduced (paper Fig. 2(f), IOPR ~= 1).
        if stride < 2:
            raise ValueError("STRIDED_SUBM requires stride >= 2")
        out_shape = (
            (in_shape[0] + stride - 1) // stride,
            (in_shape[1] + stride - 1) // stride,
        )
        if len(in_coords):
            direct = np.unique(flatten(in_coords // stride, out_shape))
            out_coords = unflatten(direct, out_shape)
        else:
            out_coords = np.zeros((0, 2), dtype=np.int32)
    elif conv_type is ConvType.DECONV:
        if stride < 2:
            raise ValueError("DECONV requires stride >= 2")
        kernel_size = stride
        out_coords, out_shape = upsample_coords(in_coords, in_shape, stride)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unsupported conv type {conv_type}")

    rules = Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=in_shape,
        out_shape=out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )

    if len(in_coords) == 0:
        empty = np.zeros(0, dtype=np.int64)
        num_offsets = kernel_size * kernel_size
        rules.pairs = [RulePairs(empty, empty) for _ in range(num_offsets)]
        return rules

    out_flat = flatten(out_coords, out_shape)

    if conv_type is ConvType.DECONV:
        offsets = np.array(
            [(dr, dc) for dr in range(stride) for dc in range(stride)],
            dtype=np.int32,
        )
        for offset in offsets:
            candidates = in_coords * stride + offset
            out_idx = _lookup_sorted(out_flat, flatten(candidates, out_shape))
            # Every upsampled position exists by construction.
            in_idx = np.arange(len(in_coords), dtype=np.int64)
            rules.pairs.append(RulePairs(in_idx, out_idx))
        return rules

    offsets = kernel_offsets(kernel_size)
    all_in_idx = np.arange(len(in_coords), dtype=np.int64)
    for offset in offsets:
        # Input p at kernel offset o feeds output q with stride*q + o = p.
        numerator = in_coords - offset
        if stride == 1:
            candidates = numerator
            exact = np.ones(len(in_coords), dtype=bool)
        else:
            exact = (numerator % stride == 0).all(axis=1)
            candidates = numerator // stride
        in_bounds = (
            (candidates[:, 0] >= 0)
            & (candidates[:, 0] < out_shape[0])
            & (candidates[:, 1] >= 0)
            & (candidates[:, 1] < out_shape[1])
        )
        valid = exact & in_bounds
        out_idx = _lookup_sorted(
            out_flat, flatten(candidates[valid], out_shape)
        )
        found = out_idx >= 0
        rules.pairs.append(
            RulePairs(all_in_idx[valid][found], out_idx[found])
        )
    return rules
