"""Reference rule generation for every sparse-convolution variant.

A *rule* is the explicit input-output mapping of a sparse convolution: for
each kernel offset ``k`` it lists which active-input rows contribute to
which active-output rows.  The paper's RGU (Sec. III-B) produces exactly
this structure in hardware; this module is the functional reference the
hardware model is validated against.

Supported operations (paper Fig. 1(c-e) and Fig. 4(a-d)):

* ``SPCONV``     — standard dilating sparse convolution;
* ``SUBM``       — submanifold convolution (SpConv-S), no dilation;
* ``SPCONV_P``   — dilating convolution whose output will be dynamically
  pruned (rules are identical to SPCONV; pruning is a post-pass);
* ``STRIDED``    — sparse strided convolution (SpStConv, downsampling);
* ``DECONV``     — sparse deconvolution (SpDeconv, non-overlapping
  stride=kernel upsampling).

Because inputs are CPR-sorted and every kernel offset shifts all
coordinates by a constant, the per-offset input and output index lists are
automatically ascending — the monotonicity property the RGU, ATM and
conflict-free scatter all rely on (asserted in tests).

Three entry points share one output-set resolution:

* :func:`build_rules` — the **fused** path: all K kernel-offset candidate
  sets are formed as one (K, P) batch and resolved with a single
  ``searchsorted`` over the concatenated flattened candidates, instead of
  K separate lookups (rulegen is the repo's hot path; the per-offset
  Python loop was most of its overhead);
* :func:`build_rules_sharded` — the **row-sharded** path mirroring the
  RGU's row-parallel processing of the CPR encoding: the frame is split
  into row bands along the CPR ``row_pointers``, each band resolves its
  candidates against only the halo-extended slice of the output rows it
  can reach, bands run concurrently (the numpy kernels release the GIL),
  and the merged per-offset lists are bit-identical to the unsharded
  reference;
* :func:`build_rules_reference` — the original per-offset loop, kept as
  the validation oracle the fused and sharded paths are asserted against
  (and as the "legacy" arm of the trace-scaling benchmark).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .coords import (
    _unique_flat_sorted,
    cpr_encode,
    dilate,
    downsample_coords,
    flatten,
    kernel_offsets,
    unflatten,
    upsample_coords,
)

#: Environment variable giving the default shard count for
#: :func:`build_rules_sharded` callers that do not pass one explicitly
#: (the engine's ``ExperimentRunner(rulegen_shards=...)`` knob reads it).
#: The canonical definition lives in :mod:`repro.engine.settings` — the
#: one place every engine knob is read — but the sparse layer cannot
#: import the engine at module level (the engine imports this module),
#: so the literal is mirrored here and pinned equal by a test.
RULEGEN_SHARDS_ENV_VAR = "REPRO_ENGINE_RULEGEN_SHARDS"


def resolve_rulegen_shards(value=None) -> int:
    """Validate a shard count; ``None`` falls back to the environment.

    Delegates to :func:`repro.engine.settings.resolve_rulegen_shards` —
    the single resolver for every engine environment knob — imported
    lazily to keep the sparse layer free of module-level engine
    dependencies.  Non-integer and non-positive values raise a
    :class:`ValueError` naming the offending source; with no explicit
    value and no environment override the result is 1 (unsharded).
    """
    from ..engine.settings import resolve_rulegen_shards as _resolve

    return _resolve(value)


class ConvType(Enum):
    """Sparse convolution operation kinds."""

    SPCONV = "spconv"
    SUBM = "subm"
    SPCONV_P = "spconv_p"
    STRIDED = "strided"
    STRIDED_SUBM = "strided_subm"
    DECONV = "deconv"


@dataclass
class RulePairs:
    """Input/output row indices for one kernel offset."""

    in_idx: np.ndarray
    out_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.in_idx)


@dataclass
class Rules:
    """Complete mapping for one sparse convolution layer.

    Attributes:
        conv_type: Operation kind.
        kernel_size: Square kernel edge (2 for DECONV with stride 2).
        stride: Convolution stride (1 for SPCONV/SUBM).
        in_shape / out_shape: Dense grid shapes.
        in_coords / out_coords: CPR-sorted active coordinate arrays.
        pairs: One :class:`RulePairs` per kernel offset, weight-index order.
    """

    conv_type: ConvType
    kernel_size: int
    stride: int
    in_shape: tuple
    out_shape: tuple
    in_coords: np.ndarray
    out_coords: np.ndarray
    pairs: list = field(default_factory=list)

    @property
    def num_inputs(self) -> int:
        return len(self.in_coords)

    @property
    def num_outputs(self) -> int:
        return len(self.out_coords)

    @property
    def total_pairs(self) -> int:
        """Total number of (input, weight, output) mappings = MAC groups."""
        return sum(len(p) for p in self.pairs)

    def macs(self, in_channels: int, out_channels: int) -> int:
        """Multiply-accumulate count of executing this layer sparsely."""
        return self.total_pairs * in_channels * out_channels

    @property
    def iopr(self) -> float:
        """Input-output pillar ratio (paper Fig. 2(d-f) metric)."""
        if self.num_inputs == 0:
            return 0.0
        return self.num_outputs / self.num_inputs


def _lookup_sorted(haystack_flat: np.ndarray, needles_flat: np.ndarray) -> np.ndarray:
    """Indices of needles in a sorted haystack, -1 when absent."""
    if len(haystack_flat) == 0 or len(needles_flat) == 0:
        return np.full(len(needles_flat), -1, dtype=np.int64)
    pos = np.searchsorted(haystack_flat, needles_flat)
    pos = np.clip(pos, 0, len(haystack_flat) - 1)
    found = haystack_flat[pos] == needles_flat
    return np.where(found, pos, -1).astype(np.int64)


def _resolve_output(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int,
    stride: int,
) -> tuple:
    """(out_coords, out_shape, effective kernel_size) of one layer."""
    if conv_type in (ConvType.SPCONV, ConvType.SPCONV_P):
        if stride != 1:
            raise ValueError("use ConvType.STRIDED for stride > 1")
        return dilate(in_coords, in_shape, kernel_size), in_shape, kernel_size
    if conv_type is ConvType.SUBM:
        if stride != 1:
            raise ValueError("submanifold convolution requires stride 1")
        return in_coords.copy(), in_shape, kernel_size
    if conv_type is ConvType.STRIDED:
        if stride < 2:
            raise ValueError("STRIDED requires stride >= 2")
        out_coords, out_shape = downsample_coords(in_coords, in_shape, stride)
        return out_coords, out_shape, kernel_size
    if conv_type is ConvType.STRIDED_SUBM:
        # Submanifold-style downsampling (SpConv-S models): an output is
        # active only where an input maps directly under the stride, so
        # no spatial dilation is introduced (paper Fig. 2(f), IOPR ~= 1).
        if stride < 2:
            raise ValueError("STRIDED_SUBM requires stride >= 2")
        out_shape = (
            (in_shape[0] + stride - 1) // stride,
            (in_shape[1] + stride - 1) // stride,
        )
        if len(in_coords):
            direct = _unique_flat_sorted(
                flatten(in_coords // stride, out_shape),
                out_shape[0] * out_shape[1],
            )
            out_coords = unflatten(direct, out_shape)
        else:
            out_coords = np.zeros((0, 2), dtype=np.int32)
        return out_coords, out_shape, kernel_size
    if conv_type is ConvType.DECONV:
        if stride < 2:
            raise ValueError("DECONV requires stride >= 2")
        out_coords, out_shape = upsample_coords(in_coords, in_shape, stride)
        return out_coords, out_shape, stride
    raise ValueError(f"unsupported conv type {conv_type}")  # pragma: no cover


def _empty_rules(rules: Rules) -> Rules:
    empty = np.zeros(0, dtype=np.int64)
    num_offsets = rules.kernel_size * rules.kernel_size
    rules.pairs = [RulePairs(empty, empty) for _ in range(num_offsets)]
    return rules


def _fused_pairs(
    in_block: np.ndarray,
    in_base: int,
    out_flat: np.ndarray,
    out_base: int,
    out_shape: tuple,
    conv_type: ConvType,
    kernel_size: int,
    stride: int,
) -> list:
    """Per-offset :class:`RulePairs` for one contiguous CPR input slice.

    All K kernel offsets are resolved in one batch: candidates form a
    (K, P) block, the valid ones are flattened offset-major and a single
    ``searchsorted`` over ``out_flat`` replaces the K separate lookups of
    the reference loop.  ``in_base`` / ``out_base`` lift block-local row
    numbers to global indices so the sharded path can pass the
    halo-restricted output slice its band can reach.
    """
    rows = in_block[:, 0].astype(np.int64)
    cols = in_block[:, 1].astype(np.int64)

    if conv_type is ConvType.DECONV:
        offsets = np.array(
            [(dr, dc) for dr in range(stride) for dc in range(stride)],
            dtype=np.int64,
        )
        flat = (
            (rows[None, :] * stride + offsets[:, None, 0]) * out_shape[1]
            + cols[None, :] * stride
            + offsets[:, None, 1]
        )
        # Every upsampled position exists by construction, so the lookup
        # needs no found-mask.
        pos = np.searchsorted(out_flat, flat.reshape(-1))
        pos = (out_base + pos).reshape(len(offsets), -1)
        return [
            RulePairs(
                in_base + np.arange(len(in_block), dtype=np.int64),
                pos[index],
            )
            for index in range(len(offsets))
        ]

    offsets = kernel_offsets(kernel_size).astype(np.int64)
    # Input p at kernel offset o feeds output q with stride*q + o = p.
    # Rows and columns stay separate planes: the (K, P) arithmetic is
    # materially cheaper than broadcasting a (K, P, 2) block.
    cand_rows = rows[None, :] - offsets[:, None, 0]
    cand_cols = cols[None, :] - offsets[:, None, 1]
    if stride == 1:
        valid = np.ones((len(offsets), len(in_block)), dtype=bool)
    else:
        valid = (cand_rows % stride == 0) & (cand_cols % stride == 0)
        cand_rows = cand_rows // stride
        cand_cols = cand_cols // stride
    valid &= (
        (cand_rows >= 0)
        & (cand_rows < out_shape[0])
        & (cand_cols >= 0)
        & (cand_cols < out_shape[1])
    )
    flat = cand_rows * out_shape[1] + cand_cols
    needles = flat[valid]
    if len(needles) and len(out_flat):
        pos = np.searchsorted(out_flat, needles)
        np.minimum(pos, len(out_flat) - 1, out=pos)
        found = out_flat[pos] == needles
    else:
        pos = np.zeros(len(needles), dtype=np.int64)
        found = np.zeros(len(needles), dtype=bool)

    pairs = []
    counts = valid.sum(axis=1)
    cursor = 0
    for index in range(len(offsets)):
        stop = cursor + counts[index]
        offset_found = found[cursor:stop]
        in_idx = in_base + np.flatnonzero(valid[index])[offset_found]
        out_idx = (out_base + pos[cursor:stop][offset_found]).astype(np.int64)
        pairs.append(RulePairs(in_idx.astype(np.int64), out_idx))
        cursor = stop
    return pairs


def build_rules(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int = 3,
    stride: int = 1,
) -> Rules:
    """Generate the input-output mapping for one sparse convolution layer.

    This is the fused path: one (K, P) candidate batch, one
    ``searchsorted``.  Bit-identical to :func:`build_rules_reference`.

    Args:
        in_coords: (P, 2) CPR-sorted active input coordinates.
        in_shape: Dense input grid shape.
        conv_type: Which sparse convolution variant.
        kernel_size: Kernel edge; DECONV forces ``kernel_size = stride``.
        stride: 1 for SPCONV/SUBM/SPCONV_P; >=2 for STRIDED/DECONV.

    Returns:
        A :class:`Rules` with ascending per-offset index lists.
    """
    in_coords = np.asarray(in_coords, dtype=np.int32)
    out_coords, out_shape, kernel_size = _resolve_output(
        in_coords, in_shape, conv_type, kernel_size, stride
    )
    rules = Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=in_shape,
        out_shape=out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )
    if len(in_coords) == 0:
        return _empty_rules(rules)
    rules.pairs = _fused_pairs(
        in_coords,
        0,
        flatten(out_coords, out_shape),
        0,
        out_shape,
        conv_type,
        kernel_size,
        stride,
    )
    return rules


def _band_bounds(row_pointers: np.ndarray, in_coords: np.ndarray,
                 shards: int) -> list:
    """Row-aligned (start, stop) pillar slices of ~equal population.

    Cut points target equal pillar counts, then snap outward to the CPR
    row boundary so every band is a whole number of rows (a row is the
    RGU's atomic work unit).  Degenerate frames (fewer occupied rows than
    shards) simply yield fewer bands.
    """
    total = len(in_coords)
    targets = (np.arange(1, shards) * total) // shards
    cut_rows = in_coords[targets, 0]
    starts = row_pointers[cut_rows]
    bounds = np.unique(np.concatenate([[0], starts, [total]]))
    return [
        (int(bounds[index]), int(bounds[index + 1]))
        for index in range(len(bounds) - 1)
        if bounds[index + 1] > bounds[index]
    ]


def _band_out_rows(first_row: int, last_row: int, out_rows: int,
                   conv_type: ConvType, kernel_size: int,
                   stride: int) -> tuple:
    """Output-row halo a band of input rows [first, last] can reach.

    The halo is ``kernel_size // 2`` rows for the stride-1 convolutions
    (an even kernel reaches asymmetrically, matching
    :func:`repro.sparse.coords.kernel_offsets`); strided variants divide
    it through the stride and DECONV scales it up.  The returned range is
    clamped to the output grid and is a superset of the rows the band's
    candidates can land in — resolving against this slice is therefore
    exactly equivalent to resolving against the full output set.
    """
    if conv_type is ConvType.DECONV:
        lo = first_row * stride
        hi = last_row * stride + stride - 1
    else:
        half = (kernel_size - 1) // 2
        hi_offset = kernel_size - 1 - half
        lo = (first_row - hi_offset) // stride
        hi = (last_row + half) // stride
    return max(lo, 0), min(hi, out_rows - 1)


def build_rules_sharded(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int = 3,
    stride: int = 1,
    shards: int = None,
    max_workers: int = None,
) -> Rules:
    """Row-parallel rule generation over CPR row bands.

    The frame is split into ``shards`` contiguous row bands along the CPR
    ``row_pointers`` (the paper's RGU processes the CPR encoding
    row-parallel the same way); each band fuses its candidate lookups
    against only the ``kernel_size // 2``-halo slice of output rows it
    can reach, bands run on a thread pool (the numpy kernels release the
    GIL), and the per-offset lists are merged in band order — which
    preserves the ascending-index invariant because bands partition the
    inputs in CPR order.

    The result is bit-identical to :func:`build_rules` /
    :func:`build_rules_reference` for every :class:`ConvType`, any shard
    count (including counts exceeding the occupied-row count) and empty
    frames.

    Args:
        shards: Number of row bands; ``None`` reads
            ``REPRO_ENGINE_RULEGEN_SHARDS`` (default 1).  Values larger
            than the occupied-row count degrade gracefully.
        max_workers: Thread-pool width for the band fan-out; defaults to
            ``min(bands, cpu_count)``.
    """
    shards = resolve_rulegen_shards(shards)
    in_coords = np.asarray(in_coords, dtype=np.int32)
    if shards <= 1 or len(in_coords) == 0:
        return build_rules(in_coords, in_shape, conv_type, kernel_size,
                           stride)

    out_coords, out_shape, kernel_size = _resolve_output(
        in_coords, in_shape, conv_type, kernel_size, stride
    )
    rules = Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=in_shape,
        out_shape=out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )

    row_pointers, _ = cpr_encode(in_coords, in_shape)
    bands = _band_bounds(row_pointers, in_coords, shards)
    out_flat = flatten(out_coords, out_shape)
    # CPR row pointers of the *output* set: each band resolves against
    # only the slice of output rows inside its halo.
    out_row_pointers = np.searchsorted(
        out_coords[:, 0], np.arange(out_shape[0] + 1)
    )

    def band_pairs(bounds: tuple) -> list:
        start, stop = bounds
        block = in_coords[start:stop]
        lo_row, hi_row = _band_out_rows(
            int(block[0, 0]), int(block[-1, 0]), out_shape[0],
            conv_type, kernel_size, stride,
        )
        if hi_row < lo_row:
            slice_start = slice_stop = 0
        else:
            slice_start = int(out_row_pointers[lo_row])
            slice_stop = int(out_row_pointers[hi_row + 1])
        return _fused_pairs(
            block,
            start,
            out_flat[slice_start:slice_stop],
            slice_start,
            out_shape,
            conv_type,
            kernel_size,
            stride,
        )

    if len(bands) > 1:
        workers = max_workers or min(len(bands), os.cpu_count() or 1)
    else:
        workers = 1
    if workers > 1:
        with ThreadPoolExecutor(min(workers, len(bands))) as pool:
            per_band = list(pool.map(band_pairs, bands))
    else:
        per_band = [band_pairs(bounds) for bounds in bands]

    num_offsets = len(per_band[0])
    rules.pairs = [
        RulePairs(
            np.concatenate([band[index].in_idx for band in per_band]),
            np.concatenate([band[index].out_idx for band in per_band]),
        )
        for index in range(num_offsets)
    ]
    return rules


def build_rules_reference(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int = 3,
    stride: int = 1,
) -> Rules:
    """The original per-offset rule-generation loop (validation oracle).

    K separate lookups, one per kernel offset — the pre-fusion hot path.
    :func:`build_rules` and :func:`build_rules_sharded` are asserted
    bit-identical to this implementation in the test suite, and the
    trace-scaling benchmark measures the fused speedup against it.
    """
    in_coords = np.asarray(in_coords, dtype=np.int32)
    out_coords, out_shape, kernel_size = _resolve_output(
        in_coords, in_shape, conv_type, kernel_size, stride
    )
    rules = Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=in_shape,
        out_shape=out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )
    if len(in_coords) == 0:
        return _empty_rules(rules)

    out_flat = flatten(out_coords, out_shape)

    if conv_type is ConvType.DECONV:
        offsets = np.array(
            [(dr, dc) for dr in range(stride) for dc in range(stride)],
            dtype=np.int32,
        )
        for offset in offsets:
            candidates = in_coords * stride + offset
            out_idx = _lookup_sorted(out_flat, flatten(candidates, out_shape))
            # Every upsampled position exists by construction.
            in_idx = np.arange(len(in_coords), dtype=np.int64)
            rules.pairs.append(RulePairs(in_idx, out_idx))
        return rules

    offsets = kernel_offsets(kernel_size)
    all_in_idx = np.arange(len(in_coords), dtype=np.int64)
    for offset in offsets:
        # Input p at kernel offset o feeds output q with stride*q + o = p.
        numerator = in_coords - offset
        if stride == 1:
            candidates = numerator
            exact = np.ones(len(in_coords), dtype=bool)
        else:
            exact = (numerator % stride == 0).all(axis=1)
            candidates = numerator // stride
        in_bounds = (
            (candidates[:, 0] >= 0)
            & (candidates[:, 0] < out_shape[0])
            & (candidates[:, 1] >= 0)
            & (candidates[:, 1] < out_shape[1])
        )
        valid = exact & in_bounds
        out_idx = _lookup_sorted(
            out_flat, flatten(candidates[valid], out_shape)
        )
        found = out_idx >= 0
        rules.pairs.append(
            RulePairs(all_in_idx[valid][found], out_idx[found])
        )
    return rules
