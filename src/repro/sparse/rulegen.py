"""Reference rule generation for every sparse-convolution variant.

A *rule* is the explicit input-output mapping of a sparse convolution: for
each kernel offset ``k`` it lists which active-input rows contribute to
which active-output rows.  The paper's RGU (Sec. III-B) produces exactly
this structure in hardware; this module is the functional reference the
hardware model is validated against.

Supported operations (paper Fig. 1(c-e) and Fig. 4(a-d)):

* ``SPCONV``     — standard dilating sparse convolution;
* ``SUBM``       — submanifold convolution (SpConv-S), no dilation;
* ``SPCONV_P``   — dilating convolution whose output will be dynamically
  pruned (rules are identical to SPCONV; pruning is a post-pass);
* ``STRIDED``    — sparse strided convolution (SpStConv, downsampling);
* ``DECONV``     — sparse deconvolution (SpDeconv, non-overlapping
  stride=kernel upsampling).

Because inputs are CPR-sorted and every kernel offset shifts all
coordinates by a constant, the per-offset input and output index lists are
automatically ascending — the monotonicity property the RGU, ATM and
conflict-free scatter all rely on (asserted in tests).

Three entry points share one output-set resolution:

* :func:`build_rules` — the **fused** path: all K kernel-offset candidate
  sets are formed as one (K, P) batch and resolved with a single
  ``searchsorted`` over the concatenated flattened candidates, instead of
  K separate lookups (rulegen is the repo's hot path; the per-offset
  Python loop was most of its overhead);
* :func:`build_rules_sharded` — the **row-sharded** path mirroring the
  RGU's row-parallel processing of the CPR encoding: the frame is split
  into row bands along the CPR ``row_pointers``, each band resolves its
  candidates against only the halo-extended slice of the output rows it
  can reach, bands run concurrently (the numpy kernels release the GIL),
  and the merged per-offset lists are bit-identical to the unsharded
  reference;
* :func:`build_rules_reference` — the original per-offset loop, kept as
  the validation oracle the fused and sharded paths are asserted against
  (and as the "legacy" arm of the trace-scaling benchmark).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .coords import (
    _DENSE_UNIQUE_CELLS,
    _unique_flat_sorted,
    cpr_encode,
    dilate,
    downsample_coords,
    flatten,
    kernel_offsets,
    sorted_set_diff,
    sorted_set_member,
    unflatten,
    upsample_coords,
)

#: Environment variable giving the default shard count for
#: :func:`build_rules_sharded` callers that do not pass one explicitly
#: (the engine's ``ExperimentRunner(rulegen_shards=...)`` knob reads it).
#: The canonical definition lives in :mod:`repro.engine.settings` — the
#: one place every engine knob is read — but the sparse layer cannot
#: import the engine at module level (the engine imports this module),
#: so the literal is mirrored here and pinned equal by a test.
RULEGEN_SHARDS_ENV_VAR = "REPRO_ENGINE_RULEGEN_SHARDS"

#: Fallback fraction for :func:`build_rules_delta`: when the diff against
#: the previous frame touches more than this fraction of the new frame's
#: pillars, patching costs more than rebuilding and the delta path falls
#: back to the fused full build.  Mirrored from
#: :mod:`repro.engine.settings` for the same import-cycle reason as
#: :data:`RULEGEN_SHARDS_ENV_VAR`; pinned equal by a test.
DELTA_THRESHOLD_ENV_VAR = "REPRO_ENGINE_DELTA_THRESHOLD"


def resolve_delta_threshold(value=None) -> float:
    """Validate a delta-fallback fraction; ``None`` reads the environment.

    Delegates to :func:`repro.engine.settings.resolve_delta_threshold`
    (lazy import, same reason as :func:`resolve_rulegen_shards`).  Values
    outside ``(0, 1]`` raise a :class:`ValueError` naming the source; the
    default is 0.5.
    """
    from ..engine.settings import resolve_delta_threshold as _resolve

    return _resolve(value)


def resolve_rulegen_shards(value=None) -> int:
    """Validate a shard count; ``None`` falls back to the environment.

    Delegates to :func:`repro.engine.settings.resolve_rulegen_shards` —
    the single resolver for every engine environment knob — imported
    lazily to keep the sparse layer free of module-level engine
    dependencies.  Non-integer and non-positive values raise a
    :class:`ValueError` naming the offending source; with no explicit
    value and no environment override the result is 1 (unsharded).
    """
    from ..engine.settings import resolve_rulegen_shards as _resolve

    return _resolve(value)


class ConvType(Enum):
    """Sparse convolution operation kinds."""

    SPCONV = "spconv"
    SUBM = "subm"
    SPCONV_P = "spconv_p"
    STRIDED = "strided"
    STRIDED_SUBM = "strided_subm"
    DECONV = "deconv"


@dataclass
class RulePairs:
    """Input/output row indices for one kernel offset."""

    in_idx: np.ndarray
    out_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.in_idx)


@dataclass
class Rules:
    """Complete mapping for one sparse convolution layer.

    Attributes:
        conv_type: Operation kind.
        kernel_size: Square kernel edge (2 for DECONV with stride 2).
        stride: Convolution stride (1 for SPCONV/SUBM).
        in_shape / out_shape: Dense grid shapes.
        in_coords / out_coords: CPR-sorted active coordinate arrays.
        pairs: One :class:`RulePairs` per kernel offset, weight-index order.
    """

    conv_type: ConvType
    kernel_size: int
    stride: int
    in_shape: tuple
    out_shape: tuple
    in_coords: np.ndarray
    out_coords: np.ndarray
    pairs: list = field(default_factory=list)

    @property
    def num_inputs(self) -> int:
        return len(self.in_coords)

    @property
    def num_outputs(self) -> int:
        return len(self.out_coords)

    @property
    def total_pairs(self) -> int:
        """Total number of (input, weight, output) mappings = MAC groups."""
        return sum(len(p) for p in self.pairs)

    def macs(self, in_channels: int, out_channels: int) -> int:
        """Multiply-accumulate count of executing this layer sparsely."""
        return self.total_pairs * in_channels * out_channels

    @property
    def iopr(self) -> float:
        """Input-output pillar ratio (paper Fig. 2(d-f) metric)."""
        if self.num_inputs == 0:
            return 0.0
        return self.num_outputs / self.num_inputs


def _lookup_sorted(haystack_flat: np.ndarray, needles_flat: np.ndarray) -> np.ndarray:
    """Indices of needles in a sorted haystack, -1 when absent."""
    if len(haystack_flat) == 0 or len(needles_flat) == 0:
        return np.full(len(needles_flat), -1, dtype=np.int64)
    pos = np.searchsorted(haystack_flat, needles_flat)
    pos = np.clip(pos, 0, len(haystack_flat) - 1)
    found = haystack_flat[pos] == needles_flat
    return np.where(found, pos, -1).astype(np.int64)


def _resolve_output(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int,
    stride: int,
) -> tuple:
    """(out_coords, out_shape, effective kernel_size) of one layer."""
    if conv_type in (ConvType.SPCONV, ConvType.SPCONV_P):
        if stride != 1:
            raise ValueError("use ConvType.STRIDED for stride > 1")
        return dilate(in_coords, in_shape, kernel_size), in_shape, kernel_size
    if conv_type is ConvType.SUBM:
        if stride != 1:
            raise ValueError("submanifold convolution requires stride 1")
        return in_coords.copy(), in_shape, kernel_size
    if conv_type is ConvType.STRIDED:
        if stride < 2:
            raise ValueError("STRIDED requires stride >= 2")
        out_coords, out_shape = downsample_coords(in_coords, in_shape, stride)
        return out_coords, out_shape, kernel_size
    if conv_type is ConvType.STRIDED_SUBM:
        # Submanifold-style downsampling (SpConv-S models): an output is
        # active only where an input maps directly under the stride, so
        # no spatial dilation is introduced (paper Fig. 2(f), IOPR ~= 1).
        if stride < 2:
            raise ValueError("STRIDED_SUBM requires stride >= 2")
        out_shape = (
            (in_shape[0] + stride - 1) // stride,
            (in_shape[1] + stride - 1) // stride,
        )
        if len(in_coords):
            direct = _unique_flat_sorted(
                flatten(in_coords // stride, out_shape),
                out_shape[0] * out_shape[1],
            )
            out_coords = unflatten(direct, out_shape)
        else:
            out_coords = np.zeros((0, 2), dtype=np.int32)
        return out_coords, out_shape, kernel_size
    if conv_type is ConvType.DECONV:
        if stride < 2:
            raise ValueError("DECONV requires stride >= 2")
        out_coords, out_shape = upsample_coords(in_coords, in_shape, stride)
        return out_coords, out_shape, stride
    raise ValueError(f"unsupported conv type {conv_type}")  # pragma: no cover


def _empty_rules(rules: Rules) -> Rules:
    empty = np.zeros(0, dtype=np.int64)
    num_offsets = rules.kernel_size * rules.kernel_size
    rules.pairs = [RulePairs(empty, empty) for _ in range(num_offsets)]
    return rules


def _fused_pairs(
    in_block: np.ndarray,
    in_base: int,
    out_flat: np.ndarray,
    out_base: int,
    out_shape: tuple,
    conv_type: ConvType,
    kernel_size: int,
    stride: int,
) -> list:
    """Per-offset :class:`RulePairs` for one contiguous CPR input slice.

    All K kernel offsets are resolved in one batch: candidates form a
    (K, P) block, the valid ones are flattened offset-major and a single
    ``searchsorted`` over ``out_flat`` replaces the K separate lookups of
    the reference loop.  ``in_base`` / ``out_base`` lift block-local row
    numbers to global indices so the sharded path can pass the
    halo-restricted output slice its band can reach.
    """
    rows = in_block[:, 0].astype(np.int64)
    cols = in_block[:, 1].astype(np.int64)

    if conv_type is ConvType.DECONV:
        offsets = np.array(
            [(dr, dc) for dr in range(stride) for dc in range(stride)],
            dtype=np.int64,
        )
        flat = (
            (rows[None, :] * stride + offsets[:, None, 0]) * out_shape[1]
            + cols[None, :] * stride
            + offsets[:, None, 1]
        )
        # Every upsampled position exists by construction, so the lookup
        # needs no found-mask.
        pos = np.searchsorted(out_flat, flat.reshape(-1))
        pos = (out_base + pos).reshape(len(offsets), -1)
        return [
            RulePairs(
                in_base + np.arange(len(in_block), dtype=np.int64),
                pos[index],
            )
            for index in range(len(offsets))
        ]

    offsets = kernel_offsets(kernel_size).astype(np.int64)
    # Input p at kernel offset o feeds output q with stride*q + o = p.
    # Rows and columns stay separate planes: the (K, P) arithmetic is
    # materially cheaper than broadcasting a (K, P, 2) block.
    cand_rows = rows[None, :] - offsets[:, None, 0]
    cand_cols = cols[None, :] - offsets[:, None, 1]
    if stride == 1:
        valid = np.ones((len(offsets), len(in_block)), dtype=bool)
    else:
        valid = (cand_rows % stride == 0) & (cand_cols % stride == 0)
        cand_rows = cand_rows // stride
        cand_cols = cand_cols // stride
    valid &= (
        (cand_rows >= 0)
        & (cand_rows < out_shape[0])
        & (cand_cols >= 0)
        & (cand_cols < out_shape[1])
    )
    flat = cand_rows * out_shape[1] + cand_cols
    needles = flat[valid]
    if len(needles) and len(out_flat):
        pos = np.searchsorted(out_flat, needles)
        np.minimum(pos, len(out_flat) - 1, out=pos)
        found = out_flat[pos] == needles
    else:
        pos = np.zeros(len(needles), dtype=np.int64)
        found = np.zeros(len(needles), dtype=bool)

    pairs = []
    counts = valid.sum(axis=1)
    cursor = 0
    for index in range(len(offsets)):
        stop = cursor + counts[index]
        offset_found = found[cursor:stop]
        in_idx = in_base + np.flatnonzero(valid[index])[offset_found]
        out_idx = (out_base + pos[cursor:stop][offset_found]).astype(np.int64)
        pairs.append(RulePairs(in_idx.astype(np.int64), out_idx))
        cursor = stop
    return pairs


def build_rules(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int = 3,
    stride: int = 1,
) -> Rules:
    """Generate the input-output mapping for one sparse convolution layer.

    This is the fused path: one (K, P) candidate batch, one
    ``searchsorted``.  Bit-identical to :func:`build_rules_reference`.

    Args:
        in_coords: (P, 2) CPR-sorted active input coordinates.
        in_shape: Dense input grid shape.
        conv_type: Which sparse convolution variant.
        kernel_size: Kernel edge; DECONV forces ``kernel_size = stride``.
        stride: 1 for SPCONV/SUBM/SPCONV_P; >=2 for STRIDED/DECONV.

    Returns:
        A :class:`Rules` with ascending per-offset index lists.
    """
    in_coords = np.asarray(in_coords, dtype=np.int32)
    out_coords, out_shape, kernel_size = _resolve_output(
        in_coords, in_shape, conv_type, kernel_size, stride
    )
    rules = Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=in_shape,
        out_shape=out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )
    if len(in_coords) == 0:
        return _empty_rules(rules)
    rules.pairs = _fused_pairs(
        in_coords,
        0,
        flatten(out_coords, out_shape),
        0,
        out_shape,
        conv_type,
        kernel_size,
        stride,
    )
    return rules


def _band_bounds(row_pointers: np.ndarray, in_coords: np.ndarray,
                 shards: int) -> list:
    """Row-aligned (start, stop) pillar slices of ~equal population.

    Cut points target equal pillar counts, then snap outward to the CPR
    row boundary so every band is a whole number of rows (a row is the
    RGU's atomic work unit).  Degenerate frames (fewer occupied rows than
    shards) simply yield fewer bands.
    """
    total = len(in_coords)
    targets = (np.arange(1, shards) * total) // shards
    cut_rows = in_coords[targets, 0]
    starts = row_pointers[cut_rows]
    bounds = np.unique(np.concatenate([[0], starts, [total]]))
    return [
        (int(bounds[index]), int(bounds[index + 1]))
        for index in range(len(bounds) - 1)
        if bounds[index + 1] > bounds[index]
    ]


def _band_out_rows(first_row: int, last_row: int, out_rows: int,
                   conv_type: ConvType, kernel_size: int,
                   stride: int) -> tuple:
    """Output-row halo a band of input rows [first, last] can reach.

    The halo is ``kernel_size // 2`` rows for the stride-1 convolutions
    (an even kernel reaches asymmetrically, matching
    :func:`repro.sparse.coords.kernel_offsets`); strided variants divide
    it through the stride and DECONV scales it up.  The returned range is
    clamped to the output grid and is a superset of the rows the band's
    candidates can land in — resolving against this slice is therefore
    exactly equivalent to resolving against the full output set.
    """
    if conv_type is ConvType.DECONV:
        lo = first_row * stride
        hi = last_row * stride + stride - 1
    else:
        half = (kernel_size - 1) // 2
        hi_offset = kernel_size - 1 - half
        lo = (first_row - hi_offset) // stride
        hi = (last_row + half) // stride
    return max(lo, 0), min(hi, out_rows - 1)


def build_rules_sharded(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int = 3,
    stride: int = 1,
    shards: int = None,
    max_workers: int = None,
) -> Rules:
    """Row-parallel rule generation over CPR row bands.

    The frame is split into ``shards`` contiguous row bands along the CPR
    ``row_pointers`` (the paper's RGU processes the CPR encoding
    row-parallel the same way); each band fuses its candidate lookups
    against only the ``kernel_size // 2``-halo slice of output rows it
    can reach, bands run on a thread pool (the numpy kernels release the
    GIL), and the per-offset lists are merged in band order — which
    preserves the ascending-index invariant because bands partition the
    inputs in CPR order.

    The result is bit-identical to :func:`build_rules` /
    :func:`build_rules_reference` for every :class:`ConvType`, any shard
    count (including counts exceeding the occupied-row count) and empty
    frames.

    Args:
        shards: Number of row bands; ``None`` reads
            ``REPRO_ENGINE_RULEGEN_SHARDS`` (default 1).  Values larger
            than the occupied-row count degrade gracefully.
        max_workers: Thread-pool width for the band fan-out; defaults to
            ``min(bands, cpu_count)``.
    """
    shards = resolve_rulegen_shards(shards)
    in_coords = np.asarray(in_coords, dtype=np.int32)
    if shards <= 1 or len(in_coords) == 0:
        return build_rules(in_coords, in_shape, conv_type, kernel_size,
                           stride)

    out_coords, out_shape, kernel_size = _resolve_output(
        in_coords, in_shape, conv_type, kernel_size, stride
    )
    rules = Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=in_shape,
        out_shape=out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )

    row_pointers, _ = cpr_encode(in_coords, in_shape)
    bands = _band_bounds(row_pointers, in_coords, shards)
    out_flat = flatten(out_coords, out_shape)
    # CPR row pointers of the *output* set: each band resolves against
    # only the slice of output rows inside its halo.
    out_row_pointers = np.searchsorted(
        out_coords[:, 0], np.arange(out_shape[0] + 1)
    )

    def band_pairs(bounds: tuple) -> list:
        start, stop = bounds
        block = in_coords[start:stop]
        lo_row, hi_row = _band_out_rows(
            int(block[0, 0]), int(block[-1, 0]), out_shape[0],
            conv_type, kernel_size, stride,
        )
        if hi_row < lo_row:
            slice_start = slice_stop = 0
        else:
            slice_start = int(out_row_pointers[lo_row])
            slice_stop = int(out_row_pointers[hi_row + 1])
        return _fused_pairs(
            block,
            start,
            out_flat[slice_start:slice_stop],
            slice_start,
            out_shape,
            conv_type,
            kernel_size,
            stride,
        )

    if len(bands) > 1:
        workers = max_workers or min(len(bands), os.cpu_count() or 1)
    else:
        workers = 1
    if workers > 1:
        with ThreadPoolExecutor(min(workers, len(bands))) as pool:
            per_band = list(pool.map(band_pairs, bands))
    else:
        per_band = [band_pairs(bounds) for bounds in bands]

    num_offsets = len(per_band[0])
    rules.pairs = [
        RulePairs(
            np.concatenate([band[index].in_idx for band in per_band]),
            np.concatenate([band[index].out_idx for band in per_band]),
        )
        for index in range(num_offsets)
    ]
    return rules


def build_rules_reference(
    in_coords: np.ndarray,
    in_shape: tuple,
    conv_type: ConvType,
    kernel_size: int = 3,
    stride: int = 1,
) -> Rules:
    """The original per-offset rule-generation loop (validation oracle).

    K separate lookups, one per kernel offset — the pre-fusion hot path.
    :func:`build_rules` and :func:`build_rules_sharded` are asserted
    bit-identical to this implementation in the test suite, and the
    trace-scaling benchmark measures the fused speedup against it.
    """
    in_coords = np.asarray(in_coords, dtype=np.int32)
    out_coords, out_shape, kernel_size = _resolve_output(
        in_coords, in_shape, conv_type, kernel_size, stride
    )
    rules = Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=in_shape,
        out_shape=out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
    )
    if len(in_coords) == 0:
        return _empty_rules(rules)

    out_flat = flatten(out_coords, out_shape)

    if conv_type is ConvType.DECONV:
        offsets = np.array(
            [(dr, dc) for dr in range(stride) for dc in range(stride)],
            dtype=np.int32,
        )
        for offset in offsets:
            candidates = in_coords * stride + offset
            out_idx = _lookup_sorted(out_flat, flatten(candidates, out_shape))
            # Every upsampled position exists by construction.
            in_idx = np.arange(len(in_coords), dtype=np.int64)
            rules.pairs.append(RulePairs(in_idx, out_idx))
        return rules

    offsets = kernel_offsets(kernel_size)
    all_in_idx = np.arange(len(in_coords), dtype=np.int64)
    for offset in offsets:
        # Input p at kernel offset o feeds output q with stride*q + o = p.
        numerator = in_coords - offset
        if stride == 1:
            candidates = numerator
            exact = np.ones(len(in_coords), dtype=bool)
        else:
            exact = (numerator % stride == 0).all(axis=1)
            candidates = numerator // stride
        in_bounds = (
            (candidates[:, 0] >= 0)
            & (candidates[:, 0] < out_shape[0])
            & (candidates[:, 1] >= 0)
            & (candidates[:, 1] < out_shape[1])
        )
        valid = exact & in_bounds
        out_idx = _lookup_sorted(
            out_flat, flatten(candidates[valid], out_shape)
        )
        found = out_idx >= 0
        rules.pairs.append(
            RulePairs(all_in_idx[valid][found], out_idx[found])
        )
    return rules


def _any_active(rows: np.ndarray, cols: np.ndarray, shape: tuple,
                active_flat: np.ndarray,
                active_mask: np.ndarray = None) -> np.ndarray:
    """Column-wise "any candidate is active": rows/cols are (K, B) planes.

    Out-of-bounds candidates count as inactive; membership resolves
    against the sorted ``active_flat`` set, or — when the caller has a
    dense cell mask of the same set — as one ``active_mask`` gather.
    """
    valid = (
        (rows >= 0) & (rows < shape[0]) & (cols >= 0) & (cols < shape[1])
    )
    hit = np.zeros(rows.shape, dtype=bool)
    if valid.any() and len(active_flat):
        flat = rows * shape[1] + cols
        if active_mask is not None:
            hit[valid] = active_mask[flat[valid]]
        else:
            hit[valid] = sorted_set_member(active_flat, flat[valid])
    return hit.any(axis=0)


def _forward_out_flat(coords: np.ndarray, in_shape: tuple, out_shape: tuple,
                      conv_type: ConvType, kernel_size: int,
                      stride: int) -> np.ndarray:
    """Sorted flat output positions a coordinate subset can activate.

    This is the per-type out-set map restricted to ``coords`` — exactly
    the construction :func:`_resolve_output` applies to the full frame,
    so born/dead output candidates of a frame diff are its image of the
    added/removed inputs.
    """
    coords = np.asarray(coords, dtype=np.int32)
    if len(coords) == 0:
        return np.zeros(0, dtype=np.int64)
    if conv_type in (ConvType.SPCONV, ConvType.SPCONV_P):
        return flatten(dilate(coords, in_shape, kernel_size), out_shape)
    if conv_type is ConvType.SUBM:
        return flatten(coords, out_shape)
    if conv_type is ConvType.STRIDED:
        image, _ = downsample_coords(coords, in_shape, stride)
        return flatten(image, out_shape)
    if conv_type is ConvType.STRIDED_SUBM:
        return _unique_flat_sorted(
            flatten(coords // stride, out_shape),
            out_shape[0] * out_shape[1],
        )
    if conv_type is ConvType.DECONV:
        image, _ = upsample_coords(coords, in_shape, stride)
        return flatten(image, out_shape)
    raise ValueError(f"unsupported conv type {conv_type}")  # pragma: no cover


def _supported_mask(out_cand: np.ndarray, new_in_flat: np.ndarray,
                    in_shape: tuple, conv_type: ConvType, kernel_size: int,
                    stride: int,
                    active_mask: np.ndarray = None) -> np.ndarray:
    """Which dead-output candidates still have support in the new frame.

    An output position stays active when any input of its receptive
    window survives; the window inverse per type mirrors the out-set
    definitions in :mod:`repro.sparse.coords` (note STRIDED's window is
    ``kernel_offsets(3)`` — :func:`downsample_coords` fixes the support
    window at the usual kernel-3/pad-1 geometry regardless of the layer
    kernel, and the delta path must match it exactly).
    """
    q_rows = out_cand[:, 0].astype(np.int64)
    q_cols = out_cand[:, 1].astype(np.int64)
    if conv_type in (ConvType.SPCONV, ConvType.SPCONV_P):
        offsets = kernel_offsets(kernel_size).astype(np.int64)
        rows = q_rows[None, :] - offsets[:, None, 0]
        cols = q_cols[None, :] - offsets[:, None, 1]
    elif conv_type is ConvType.STRIDED:
        offsets = kernel_offsets(3).astype(np.int64)
        rows = q_rows[None, :] * stride + offsets[:, None, 0]
        cols = q_cols[None, :] * stride + offsets[:, None, 1]
    elif conv_type is ConvType.STRIDED_SUBM:
        offsets = np.array(
            [(dr, dc) for dr in range(stride) for dc in range(stride)],
            dtype=np.int64,
        )
        rows = q_rows[None, :] * stride + offsets[:, None, 0]
        cols = q_cols[None, :] * stride + offsets[:, None, 1]
    else:  # pragma: no cover - DECONV outputs die with their input
        raise ValueError(f"no support window for {conv_type}")
    return _any_active(rows, cols, in_shape, new_in_flat,
                       active_mask=active_mask)


def build_rules_delta(
    prev_rules: Rules,
    in_coords: np.ndarray,
    added: np.ndarray = None,
    removed: np.ndarray = None,
    threshold: float = None,
    shards: int = None,
) -> Rules:
    """Patch the previous frame's rules into the new frame's rules.

    Sequential point-cloud frames share most of their active pillars, so
    instead of rebuilding the CPR structure and per-offset rule lists
    from scratch this diffs frame N against frame N-1
    (:func:`repro.sparse.coords.sorted_set_diff`), derives the born/dead
    output positions from the images of the added/removed inputs, renames
    the surviving indices with cumulative-shift arithmetic and only
    resolves candidate windows for the *delta*: pairs of added inputs and
    pairs of surviving inputs landing on born outputs.  The result is
    bit-identical to :func:`build_rules_reference` — the same parity
    contract the fused and sharded paths honor.

    Args:
        prev_rules: Rules of the predecessor frame (same layer geometry).
        in_coords: (P, 2) CPR-sorted active coordinates of the new frame.
        added / removed: Optional pre-computed (A, 2) / (R, 2) coordinate
            diffs; derived from ``prev_rules.in_coords`` when omitted.
        threshold: Fallback fraction in ``(0, 1]``; when the diff exceeds
            ``threshold * len(in_coords)`` the patch would cost more than
            a rebuild and the full fused path runs instead.  ``None``
            reads ``REPRO_ENGINE_DELTA_THRESHOLD`` (default 0.5).
        shards: Row-shard count used by the full-rebuild fallback.

    Returns:
        A :class:`Rules` for the new frame.
    """
    conv_type = prev_rules.conv_type
    kernel_size = prev_rules.kernel_size
    stride = prev_rules.stride
    in_shape = tuple(prev_rules.in_shape)
    out_shape = tuple(prev_rules.out_shape)
    in_coords = np.asarray(in_coords, dtype=np.int32)

    def full_build() -> Rules:
        return build_rules_sharded(
            in_coords, in_shape, conv_type, kernel_size, stride,
            shards=shards,
        )

    old_in = prev_rules.in_coords
    if len(old_in) == 0 or len(in_coords) == 0:
        return full_build()

    old_in_flat = flatten(old_in, in_shape)
    new_in_flat = flatten(in_coords, in_shape)
    # On paper-sized grids every membership / rank query resolves as an
    # O(1) gather against dense cell masks instead of a log-time
    # searchsorted — the same dense-vs-sort crossover
    # :data:`repro.sparse.coords._DENSE_UNIQUE_CELLS` encodes.
    in_cells = in_shape[0] * in_shape[1]
    out_cells = out_shape[0] * out_shape[1]
    dense = max(in_cells, out_cells) <= _DENSE_UNIQUE_CELLS
    new_in_mask = None
    if dense:
        new_in_mask = np.zeros(in_cells, dtype=bool)
        new_in_mask[new_in_flat] = True
    if added is None or removed is None:
        if dense:
            old_in_mask = np.zeros(in_cells, dtype=bool)
            old_in_mask[old_in_flat] = True
            added_flat = new_in_flat[~old_in_mask[new_in_flat]]
            removed_flat = old_in_flat[~new_in_mask[old_in_flat]]
        else:
            added_flat, removed_flat = sorted_set_diff(old_in_flat,
                                                       new_in_flat)
    else:
        added_flat = flatten(
            np.asarray(added, dtype=np.int32).reshape(-1, 2), in_shape
        )
        removed_flat = flatten(
            np.asarray(removed, dtype=np.int32).reshape(-1, 2), in_shape
        )

    delta = len(added_flat) + len(removed_flat)
    if delta == 0:
        # Identical frame: the previous structure is reusable as-is
        # (Rules are immutable once built; arrays are shared, not copied).
        return Rules(
            conv_type=conv_type,
            kernel_size=kernel_size,
            stride=stride,
            in_shape=prev_rules.in_shape,
            out_shape=prev_rules.out_shape,
            in_coords=in_coords,
            out_coords=prev_rules.out_coords,
            pairs=[RulePairs(p.in_idx, p.out_idx) for p in prev_rules.pairs],
        )
    if delta > resolve_delta_threshold(threshold) * len(in_coords):
        return full_build()
    if conv_type is ConvType.DECONV:
        # Non-overlapping upsampling has no candidate windows to skip:
        # the full build is one unfiltered lookup per offset and
        # measures faster than any patch, so a non-identical DECONV
        # frame always rebuilds.
        return full_build()

    added_coords = unflatten(added_flat, in_shape)
    removed_coords = unflatten(removed_flat, in_shape)
    old_out_flat = flatten(prev_rules.out_coords, out_shape)
    if dense:
        removed_in_mask = ~new_in_mask[old_in_flat]
    else:
        removed_in_mask = sorted_set_member(removed_flat, old_in_flat)
    # Per-offset "this pair's input survives" masks; the pair-liveness
    # branch below fills them and the merge loop reuses them.
    keep_in_masks = None

    # --- output-set delta -------------------------------------------------
    if conv_type is ConvType.SUBM:
        # Output set == input set: the diff carries over verbatim (the
        # old output set is the old input set, so its removal mask is
        # the input one).
        added_out_flat = added_flat
        removed_out_mask = removed_in_mask
        new_out_flat = new_in_flat
        out_coords = in_coords.copy()
    else:
        born_cand = _forward_out_flat(
            added_coords, in_shape, out_shape, conv_type, kernel_size,
            stride,
        )
        if dense:
            old_out_mask = np.zeros(out_cells, dtype=bool)
            old_out_mask[old_out_flat] = True
            added_out_flat = born_cand[~old_out_mask[born_cand]]
        else:
            added_out_flat = born_cand[~sorted_set_member(old_out_flat,
                                                          born_cand)]
        if (conv_type in (ConvType.SPCONV, ConvType.SPCONV_P)
                and kernel_size % 2 == 1):
            # Stride-1 dilation with a symmetric offset set: the pair
            # window equals the support window, so an old output
            # survives exactly when it keeps a pair with a surviving
            # input or an added input dilates onto it — liveness falls
            # out of the pairs we must scan anyway, with no
            # candidate-window resolution at all.  (Even kernels break
            # the symmetry: pairs probe ``q + o`` while dilation
            # support is ``q - o``, so they take the window path.)
            if dense:
                born_mask = np.zeros(out_cells, dtype=bool)
                born_mask[born_cand] = True
                alive = born_mask[old_out_flat]
            else:
                alive = sorted_set_member(born_cand, old_out_flat)
            keep_in_masks = []
            for prev_pair in prev_rules.pairs:
                keep_in = ~removed_in_mask[prev_pair.in_idx]
                keep_in_masks.append(keep_in)
                alive[prev_pair.out_idx[keep_in]] = True
            removed_out_mask = ~alive
        else:
            dead_cand = _forward_out_flat(
                removed_coords, in_shape, out_shape, conv_type,
                kernel_size, stride,
            )
            if dense:
                dead_cand = dead_cand[old_out_mask[dead_cand]]
            else:
                dead_cand = dead_cand[sorted_set_member(old_out_flat,
                                                        dead_cand)]
            if conv_type is ConvType.DECONV:
                # Upsampled blocks are disjoint per input: outputs of a
                # removed input cannot be supported by any other input.
                removed_out_flat = dead_cand
            elif len(dead_cand):
                supported = _supported_mask(
                    unflatten(dead_cand, out_shape), new_in_flat,
                    in_shape, conv_type, kernel_size, stride,
                    active_mask=new_in_mask,
                )
                removed_out_flat = dead_cand[~supported]
            else:
                removed_out_flat = dead_cand
            if dense:
                dead_mask = np.zeros(out_cells, dtype=bool)
                dead_mask[removed_out_flat] = True
                removed_out_mask = dead_mask[old_out_flat]
            else:
                removed_out_mask = sorted_set_member(removed_out_flat,
                                                     old_out_flat)
        survivors_out = old_out_flat[~removed_out_mask]
        new_out_flat = np.insert(
            survivors_out,
            np.searchsorted(survivors_out, added_out_flat),
            added_out_flat,
        )
        out_coords = unflatten(new_out_flat, out_shape)

    # --- index renumbering ------------------------------------------------
    # New index of a surviving old entry = old index minus removals below
    # it plus additions below it (garbage for removed entries, which the
    # keep masks never select).  These stay O(P) sorted-set arithmetic
    # even on the dense route: a dense cumulative-rank table would cost
    # a grid-sized ``cumsum``, which measures an order of magnitude
    # slower than these P-sized passes.
    new_idx_of_old_in = (
        np.arange(len(old_in_flat), dtype=np.int64)
        - np.cumsum(removed_in_mask, dtype=np.int64)
        + np.searchsorted(added_flat, old_in_flat)
    )
    added_in_new_idx = np.searchsorted(new_in_flat, added_flat)
    if conv_type is ConvType.SUBM:
        # Identical in/out sets: the renumber tables carry over.
        new_idx_of_old_out = new_idx_of_old_in
        added_out_new_idx = added_in_new_idx
    else:
        new_idx_of_old_out = (
            np.arange(len(old_out_flat), dtype=np.int64)
            - np.cumsum(removed_out_mask, dtype=np.int64)
            + np.searchsorted(added_out_flat, old_out_flat)
        )
        added_out_new_idx = np.searchsorted(new_out_flat, added_out_flat)

    # --- pair sources -----------------------------------------------------
    empty = np.zeros(0, dtype=np.int64)
    num_offsets = len(prev_rules.pairs)

    # (b) added inputs against the full new output set: one fused batch.
    if len(added_flat):
        added_pairs = _fused_pairs(
            added_coords, 0, new_out_flat, 0, out_shape, conv_type,
            kernel_size, stride,
        )
    else:
        added_pairs = [RulePairs(empty, empty)] * num_offsets

    # (c) surviving inputs feeding born outputs: invert the pair geometry
    # per offset (input p feeds q at offset o with p = stride*q + o) and
    # keep candidates that are surviving members of the old input set.
    born_in_idx = [empty] * num_offsets
    born_out_idx = [empty] * num_offsets
    if len(added_out_flat) and conv_type is not ConvType.DECONV:
        born = unflatten(added_out_flat, out_shape)
        offsets = kernel_offsets(kernel_size).astype(np.int64)
        rows = born[:, 0].astype(np.int64)[None, :] * stride \
            + offsets[:, None, 0]
        cols = born[:, 1].astype(np.int64)[None, :] * stride \
            + offsets[:, None, 1]
        valid = (
            (rows >= 0) & (rows < in_shape[0])
            & (cols >= 0) & (cols < in_shape[1])
        )
        if dense:
            # Dense survivor table: a cell's *new* input index, or -1
            # when no surviving input occupies it — one gather resolves
            # window membership and renumbering together.
            surviving = ~removed_in_mask
            surv_new_idx = np.full(in_cells, -1, dtype=np.int64)
            surv_new_idx[old_in_flat[surviving]] = (
                new_idx_of_old_in[surviving]
            )
            vals = np.full(rows.shape, -1, dtype=np.int64)
            if valid.any():
                vals[valid] = surv_new_idx[
                    (rows * in_shape[1] + cols)[valid]
                ]
            hit = vals >= 0
            for index in range(num_offsets):
                cols_k = np.flatnonzero(hit[index])
                if len(cols_k):
                    born_in_idx[index] = vals[index, cols_k]
                    born_out_idx[index] = added_out_new_idx[cols_k]
        else:
            pos = np.full(rows.shape, -1, dtype=np.int64)
            if valid.any():
                pos[valid] = _lookup_sorted(
                    old_in_flat, (rows * in_shape[1] + cols)[valid]
                )
            hit = pos >= 0
            hit[hit] = ~removed_in_mask[pos[hit]]
            for index in range(num_offsets):
                cols_k = np.flatnonzero(hit[index])
                if len(cols_k):
                    born_in_idx[index] = (
                        new_idx_of_old_in[pos[index, cols_k]]
                    )
                    born_out_idx[index] = added_out_new_idx[cols_k]

    # (a) surviving old pairs, renumbered, merged with (b) and (c).  The
    # three sources partition the new pairs by (input, output) membership
    # in {survivor, added/born}, so their input indices are disjoint
    # within an offset and one sort restores the ascending invariant.
    pairs = []
    for index, prev_pair in enumerate(prev_rules.pairs):
        keep_in = (keep_in_masks[index] if keep_in_masks is not None
                   else ~removed_in_mask[prev_pair.in_idx])
        keep = keep_in & ~removed_out_mask[prev_pair.out_idx]
        surv_in = new_idx_of_old_in[prev_pair.in_idx[keep]]
        surv_out = new_idx_of_old_out[prev_pair.out_idx[keep]]
        fresh_in = np.concatenate([
            added_in_new_idx[added_pairs[index].in_idx],
            born_in_idx[index],
        ])
        if len(fresh_in) == 0:
            pairs.append(RulePairs(surv_in, surv_out))
            continue
        fresh_out = np.concatenate([
            added_pairs[index].out_idx,
            born_out_idx[index],
        ])
        order = np.argsort(fresh_in, kind="stable")
        fresh_in = fresh_in[order]
        fresh_out = fresh_out[order]
        # Input indices are unique within an offset (input p feeds
        # exactly one output per offset) and the survivors are already
        # ascending, so a linear scatter merge of the two sorted runs
        # restores the invariant without argsorting the whole offset.
        slots = (np.searchsorted(surv_in, fresh_in)
                 + np.arange(len(fresh_in), dtype=np.int64))
        total = len(surv_in) + len(fresh_in)
        in_all = np.empty(total, dtype=np.int64)
        out_all = np.empty(total, dtype=np.int64)
        surv_slots = np.ones(total, dtype=bool)
        surv_slots[slots] = False
        in_all[slots] = fresh_in
        out_all[slots] = fresh_out
        in_all[surv_slots] = surv_in
        out_all[surv_slots] = surv_out
        pairs.append(RulePairs(in_all, out_all))

    return Rules(
        conv_type=conv_type,
        kernel_size=kernel_size,
        stride=stride,
        in_shape=prev_rules.in_shape,
        out_shape=prev_rules.out_shape,
        in_coords=in_coords,
        out_coords=out_coords,
        pairs=pairs,
    )
