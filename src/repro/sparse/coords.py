"""Compressed-pillar-row (CPR) coordinate handling.

CPR is the paper's sparse row-wise encoding of active pillar coordinates:
pillars are stored sorted by (row, col), so indices increase monotonically
within each row and across rows.  Every algorithm in SPADE — rule
generation, active-tile management, conflict-free scatter — relies on this
monotonicity, so this module is the single source of truth for coordinate
ordering and conversion.

Coordinates are ``(row, col)`` int32 pairs throughout the library.
"""

from __future__ import annotations

import numpy as np


def cpr_encode(coords: np.ndarray, shape: tuple) -> tuple:
    """Encode CPR-sorted coordinates as (row_pointers, column_indices).

    This is the compressed-pillar-row format the paper names: like
    compressed sparse row, ``row_pointers`` has ``shape[0] + 1`` entries
    and ``column_indices[row_pointers[r]:row_pointers[r+1]]`` lists the
    active columns of row ``r`` in ascending order.  The RGU's alignment
    stage consumes exactly this representation.
    """
    coords = np.asarray(coords, dtype=np.int32)
    validate_coords(coords, shape)
    row_pointers = np.searchsorted(
        coords[:, 0], np.arange(shape[0] + 1)
    ).astype(np.int64)
    return row_pointers, coords[:, 1].copy()


def cpr_decode(row_pointers: np.ndarray, column_indices: np.ndarray) -> np.ndarray:
    """Inverse of :func:`cpr_encode`: reconstruct (row, col) pairs."""
    row_pointers = np.asarray(row_pointers, dtype=np.int64)
    column_indices = np.asarray(column_indices, dtype=np.int32)
    counts = np.diff(row_pointers)
    rows = np.repeat(np.arange(len(counts), dtype=np.int32), counts)
    return np.stack([rows, column_indices], axis=1)


def flatten(coords: np.ndarray, shape: tuple) -> np.ndarray:
    """Convert (row, col) pairs to flat row-major indices."""
    coords = np.asarray(coords)
    return coords[:, 0].astype(np.int64) * shape[1] + coords[:, 1]


def unflatten(flat: np.ndarray, shape: tuple) -> np.ndarray:
    """Convert flat row-major indices back to (row, col) pairs."""
    flat = np.asarray(flat, dtype=np.int64)
    return np.stack([flat // shape[1], flat % shape[1]], axis=1).astype(np.int32)


def cpr_sort(coords: np.ndarray, shape: tuple) -> tuple:
    """Sort coordinates into CPR order.

    Returns:
        (sorted_coords, permutation) where ``sorted_coords = coords[permutation]``.
    """
    coords = np.asarray(coords, dtype=np.int32)
    if len(coords) == 0:
        return coords.reshape(0, 2), np.zeros(0, dtype=np.int64)
    order = np.argsort(flatten(coords, shape), kind="stable")
    return coords[order], order


def is_cpr_sorted(coords: np.ndarray, shape: tuple) -> bool:
    """Check that coordinates are unique and strictly CPR-ordered."""
    coords = np.asarray(coords)
    if len(coords) <= 1:
        return True
    flat = flatten(coords, shape)
    return bool(np.all(np.diff(flat) > 0))


def validate_coords(coords: np.ndarray, shape: tuple) -> None:
    """Raise ValueError unless coords are in-bounds, unique and CPR-sorted."""
    coords = np.asarray(coords)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"coords must be (P, 2), got {coords.shape}")
    if len(coords) == 0:
        return
    if coords.min() < 0:
        raise ValueError("negative coordinate")
    if coords[:, 0].max() >= shape[0] or coords[:, 1].max() >= shape[1]:
        raise ValueError(f"coordinate out of bounds for grid {shape}")
    if not is_cpr_sorted(coords, shape):
        raise ValueError("coords not unique/CPR-sorted")


def kernel_offsets(kernel_size: int) -> np.ndarray:
    """Enumerate kernel offsets in row-major weight-index order.

    For a 3x3 kernel the offsets run (-1,-1), (-1,0), ..., (1,1), matching
    weight indices 0..8 used by the paper's weight-grouping discussion
    (Fig. 8(a) numbers weights 0..8 in this order).
    """
    half = (kernel_size - 1) // 2
    offs = [
        (dr, dc)
        for dr in range(-half, kernel_size - half)
        for dc in range(-half, kernel_size - half)
    ]
    return np.array(offs, dtype=np.int32)


#: Grids up to this many cells resolve unique active sets through a dense
#: boolean mask (one linear pass) instead of a hash/sort ``np.unique`` —
#: the paper's BEV grids are at most ~512x512, where the mask wins by an
#: order of magnitude.  Larger virtual grids fall back to ``np.unique``.
_DENSE_UNIQUE_CELLS = 1 << 24


def _unique_flat_sorted(flat: np.ndarray, total: int) -> np.ndarray:
    """Ascending unique flat indices (all in ``[0, total)``)."""
    if total <= _DENSE_UNIQUE_CELLS:
        mask = np.zeros(total, dtype=bool)
        mask[flat] = True
        return np.flatnonzero(mask)
    return np.unique(flat)


def sorted_set_member(haystack_flat: np.ndarray,
                      needles_flat: np.ndarray) -> np.ndarray:
    """Boolean membership of ``needles_flat`` in a sorted flat set.

    Both arrays are strictly-ascending flat indices (the invariant every
    CPR-derived set carries); membership resolves with one
    ``searchsorted`` instead of hashing.
    """
    needles_flat = np.asarray(needles_flat, dtype=np.int64)
    if len(haystack_flat) == 0 or len(needles_flat) == 0:
        return np.zeros(len(needles_flat), dtype=bool)
    pos = np.searchsorted(haystack_flat, needles_flat)
    np.minimum(pos, len(haystack_flat) - 1, out=pos)
    return haystack_flat[pos] == needles_flat


def sorted_set_diff(old_flat: np.ndarray, new_flat: np.ndarray) -> tuple:
    """``(added, removed)`` between two strictly-ascending flat sets.

    ``added`` are the members of ``new_flat`` absent from ``old_flat``
    and ``removed`` the members of ``old_flat`` absent from
    ``new_flat``, each in ascending order.  This is the frame-to-frame
    diff primitive delta rule generation
    (:func:`repro.sparse.rulegen.build_rules_delta`) patches from: two
    ``searchsorted`` passes, no hashing, no re-sort.
    """
    old_flat = np.asarray(old_flat, dtype=np.int64)
    new_flat = np.asarray(new_flat, dtype=np.int64)
    added = new_flat[~sorted_set_member(old_flat, new_flat)]
    removed = old_flat[~sorted_set_member(new_flat, old_flat)]
    return added, removed


def dilate(coords: np.ndarray, shape: tuple, kernel_size: int = 3) -> np.ndarray:
    """Return the CPR-sorted dilation of an active set by a kernel footprint.

    The dilation is the set of output positions whose receptive field
    touches at least one active input — the active output set of a
    standard (dilating) sparse convolution.
    """
    coords = np.asarray(coords, dtype=np.int32)
    if len(coords) == 0:
        return coords.reshape(0, 2)
    offsets = kernel_offsets(kernel_size).astype(np.int64)
    rows = coords[:, 0].astype(np.int64)[None, :] + offsets[:, None, 0]
    cols = coords[:, 1].astype(np.int64)[None, :] + offsets[:, None, 1]
    in_bounds = (
        (rows >= 0) & (rows < shape[0]) & (cols >= 0) & (cols < shape[1])
    )
    flat = (rows * shape[1] + cols)[in_bounds]
    return unflatten(_unique_flat_sorted(flat, shape[0] * shape[1]), shape)


def downsample_coords(coords: np.ndarray, shape: tuple, stride: int) -> tuple:
    """Active output set of a strided (stride>=2) dilating sparse conv.

    Output position ``q`` covers input window ``stride*q + [-1, ks-2]`` for
    the usual kernel=3 / pad=1 convolution; an output is active when any
    input in its window is active.  For the rule-generation path we compute
    this precisely via :func:`build_rules`; this helper returns the output
    grid shape and the active set computed by window membership.
    """
    out_shape = ((shape[0] + stride - 1) // stride, (shape[1] + stride - 1) // stride)
    if len(coords) == 0:
        return np.zeros((0, 2), dtype=np.int32), out_shape
    offsets = kernel_offsets(3)
    # q is active iff exists offset o with stride*q + o active  <=>
    # q = (p - o) / stride for some active p and offset o, exactly divisible.
    candidates = coords[None, :, :] - offsets[:, None, :]
    exact = (candidates % stride == 0).all(axis=2)
    quotient = candidates // stride
    quotient = quotient[exact]
    in_bounds = (
        (quotient[:, 0] >= 0)
        & (quotient[:, 0] < out_shape[0])
        & (quotient[:, 1] >= 0)
        & (quotient[:, 1] < out_shape[1])
    )
    quotient = quotient[in_bounds]
    if len(quotient) == 0:
        return np.zeros((0, 2), dtype=np.int32), out_shape
    unique_flat = _unique_flat_sorted(
        flatten(quotient, out_shape), out_shape[0] * out_shape[1]
    )
    return unflatten(unique_flat, out_shape), out_shape


def upsample_coords(coords: np.ndarray, shape: tuple, stride: int) -> tuple:
    """Active output set of a non-overlapping sparse deconvolution.

    Each input pillar ``p`` produces the ``stride x stride`` output block at
    ``stride*p``; blocks of distinct inputs never overlap, which is the
    property the paper's ganged-scatter optimization exploits.
    """
    out_shape = (shape[0] * stride, shape[1] * stride)
    if len(coords) == 0:
        return np.zeros((0, 2), dtype=np.int32), out_shape
    offsets = np.array(
        [(dr, dc) for dr in range(stride) for dc in range(stride)], dtype=np.int32
    )
    outputs = (coords[:, None, :] * stride + offsets[None, :, :]).reshape(-1, 2)
    unique_flat = _unique_flat_sorted(
        flatten(outputs, out_shape), out_shape[0] * out_shape[1]
    )
    return unflatten(unique_flat, out_shape), out_shape
