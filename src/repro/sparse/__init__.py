"""Vector-sparse convolution library: CPR coords, rules, execution, pruning."""

from .coords import (
    cpr_decode,
    cpr_encode,
    cpr_sort,
    dilate,
    downsample_coords,
    flatten,
    is_cpr_sorted,
    kernel_offsets,
    unflatten,
    upsample_coords,
    validate_coords,
)
from .functional import (
    dense_conv2d_reference,
    dense_deconv2d_reference,
    init_conv_weight,
    sparse_conv,
    sparse_conv_apply,
)
from .pruning import (
    pillar_magnitudes,
    sparsity_prune,
    threshold_for_keep_ratio,
    threshold_prune,
    topk_prune,
)
from .rulegen import (
    RULEGEN_SHARDS_ENV_VAR,
    ConvType,
    RulePairs,
    Rules,
    build_rules,
    build_rules_reference,
    build_rules_sharded,
    resolve_rulegen_shards,
)
from .tensor import SparseTensor

__all__ = [
    "ConvType",
    "cpr_decode",
    "cpr_encode",
    "RULEGEN_SHARDS_ENV_VAR",
    "RulePairs",
    "Rules",
    "SparseTensor",
    "build_rules",
    "build_rules_reference",
    "build_rules_sharded",
    "resolve_rulegen_shards",
    "cpr_sort",
    "dense_conv2d_reference",
    "dense_deconv2d_reference",
    "dilate",
    "downsample_coords",
    "flatten",
    "init_conv_weight",
    "is_cpr_sorted",
    "kernel_offsets",
    "pillar_magnitudes",
    "sparse_conv",
    "sparse_conv_apply",
    "sparsity_prune",
    "threshold_for_keep_ratio",
    "threshold_prune",
    "topk_prune",
    "unflatten",
    "upsample_coords",
    "validate_coords",
]
