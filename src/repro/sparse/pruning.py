"""Dynamic vector pruning of sparse tensors (the SpConv-P post-pass).

The paper prunes *whole pillar vectors* (not individual elements) by
magnitude: pillars whose channel-vector norm falls below a threshold — or
outside the Top-K — are dropped from the active set, restoring sparsity
after dilation.  During training the threshold behaviour is robustified by
Top-K pruning-aware fine-tuning (see :mod:`repro.nn.finetune`); at
inference either policy can be applied here.
"""

from __future__ import annotations

import numpy as np

from .tensor import SparseTensor


def pillar_magnitudes(features: np.ndarray, order: int = 2) -> np.ndarray:
    """Per-pillar channel-vector magnitude (L2 by default)."""
    if order == 2:
        return np.sqrt((features.astype(np.float64) ** 2).sum(axis=1))
    if order == 1:
        return np.abs(features).sum(axis=1)
    raise ValueError(f"unsupported norm order {order}")


def topk_prune(tensor: SparseTensor, keep: int) -> tuple:
    """Keep the ``keep`` largest-magnitude pillars, preserving CPR order.

    Returns:
        (pruned tensor, kept active-row indices ascending).
    """
    if keep >= tensor.num_active:
        return tensor, np.arange(tensor.num_active, dtype=np.int64)
    if keep <= 0:
        empty = np.zeros(0, dtype=np.int64)
        return tensor.select(empty), empty
    magnitude = pillar_magnitudes(tensor.features)
    # argpartition finds the K largest; re-sorting restores CPR order.
    kept = np.argpartition(magnitude, -keep)[-keep:]
    kept = np.sort(kept).astype(np.int64)
    return tensor.select(kept), kept


def threshold_prune(tensor: SparseTensor, threshold: float) -> tuple:
    """Drop pillars whose magnitude is <= threshold (CPR order preserved)."""
    magnitude = pillar_magnitudes(tensor.features)
    kept = np.nonzero(magnitude > threshold)[0].astype(np.int64)
    return tensor.select(kept), kept


def sparsity_prune(tensor: SparseTensor, target_keep_ratio: float) -> tuple:
    """Keep the top ``target_keep_ratio`` fraction of pillars by magnitude.

    This is the inference-time policy: after fine-tuning, a representative
    per-layer keep ratio realizes the user-specified activation sparsity.
    """
    if not 0.0 <= target_keep_ratio <= 1.0:
        raise ValueError("keep ratio must be in [0, 1]")
    keep = int(round(tensor.num_active * target_keep_ratio))
    return topk_prune(tensor, keep)


def threshold_for_keep_ratio(features: np.ndarray, keep_ratio: float) -> float:
    """Representative magnitude threshold realizing a keep ratio.

    The paper retrieves such thresholds after fine-tuning so inference can
    prune with a cheap compare instead of a global Top-K.
    """
    if len(features) == 0 or keep_ratio >= 1.0:
        return 0.0
    magnitude = pillar_magnitudes(features)
    quantile = 1.0 - keep_ratio
    return float(np.quantile(magnitude, quantile))
