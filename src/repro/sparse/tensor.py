"""Sparse BEV tensor: CPR-ordered coordinates plus per-pillar features."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coords import flatten, unflatten, validate_coords


@dataclass
class SparseTensor:
    """A vector-sparse 2D feature map.

    Every active pillar carries a full C-element feature vector; inactive
    pillars are implicit zeros.  This is exactly the *vector sparsity*
    pattern the paper targets: zeros occur for all channels of a pillar at
    once, never element-wise.

    Attributes:
        coords: (P, 2) int32 active (row, col) coordinates in CPR order.
        features: (P, C) feature vectors, one per active pillar.
        shape: Dense grid shape (rows, cols).
    """

    coords: np.ndarray
    features: np.ndarray
    shape: tuple

    def __post_init__(self):
        self.coords = np.ascontiguousarray(self.coords, dtype=np.int32)
        self.features = np.asarray(self.features)
        if self.features.ndim != 2:
            raise ValueError(f"features must be (P, C), got {self.features.shape}")
        if len(self.features) != len(self.coords):
            raise ValueError(
                f"{len(self.coords)} coords but {len(self.features)} feature rows"
            )
        validate_coords(self.coords, self.shape)

    @property
    def num_active(self) -> int:
        """Number of active pillars P."""
        return len(self.coords)

    @property
    def num_channels(self) -> int:
        """Feature width C."""
        return self.features.shape[1]

    @property
    def density(self) -> float:
        """Fraction of grid cells that are active."""
        total = self.shape[0] * self.shape[1]
        return self.num_active / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        """Materialize the (C, rows, cols) dense feature map."""
        dense = np.zeros(
            (self.num_channels, self.shape[0], self.shape[1]),
            dtype=self.features.dtype,
        )
        if self.num_active:
            dense[:, self.coords[:, 0], self.coords[:, 1]] = self.features.T
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray, threshold: float = 0.0) -> "SparseTensor":
        """Extract active pillars (vector L-inf norm > threshold) from a dense map."""
        channels, rows, cols = dense.shape
        magnitude = np.abs(dense).max(axis=0)
        active_rows, active_cols = np.nonzero(magnitude > threshold)
        coords = np.stack([active_rows, active_cols], axis=1).astype(np.int32)
        features = dense[:, active_rows, active_cols].T
        return cls(coords=coords, features=features, shape=(rows, cols))

    def lookup(self, coords: np.ndarray) -> np.ndarray:
        """Row indices of ``coords`` inside this tensor (-1 when absent)."""
        if self.num_active == 0 or len(coords) == 0:
            return np.full(len(coords), -1, dtype=np.int64)
        haystack = flatten(self.coords, self.shape)
        needles = flatten(np.asarray(coords), self.shape)
        pos = np.searchsorted(haystack, needles)
        pos = np.clip(pos, 0, len(haystack) - 1)
        found = haystack[pos] == needles
        result = np.where(found, pos, -1)
        return result.astype(np.int64)

    def select(self, keep_index: np.ndarray) -> "SparseTensor":
        """Return the sub-tensor at sorted active-row indices ``keep_index``."""
        keep_index = np.asarray(keep_index, dtype=np.int64)
        return SparseTensor(
            coords=self.coords[keep_index],
            features=self.features[keep_index],
            shape=self.shape,
        )

    @classmethod
    def zeros_like_coords(
        cls, coords: np.ndarray, channels: int, shape: tuple, dtype=np.float32
    ) -> "SparseTensor":
        """A tensor with the given active set and all-zero features."""
        return cls(
            coords=np.asarray(coords, dtype=np.int32),
            features=np.zeros((len(coords), channels), dtype=dtype),
            shape=shape,
        )
