"""Functional execution of sparse convolutions via rules.

Executes the gather - matrix-multiply - scatter pipeline that the SPADE
hardware performs, but on numpy arrays.  Results are validated against
dense ``scipy``-free reference convolution in the test suite.
"""

from __future__ import annotations

import numpy as np

from .rulegen import ConvType, Rules, build_rules
from .tensor import SparseTensor


def init_conv_weight(
    kernel_size: int, in_channels: int, out_channels: int, rng=None, scale: float = None
) -> np.ndarray:
    """He-style weight init shaped (K*K, Cin, Cout) in weight-index order."""
    rng = rng or np.random.default_rng(0)
    fan_in = kernel_size * kernel_size * in_channels
    scale = scale if scale is not None else np.sqrt(2.0 / fan_in)
    return rng.normal(
        0.0, scale, size=(kernel_size * kernel_size, in_channels, out_channels)
    ).astype(np.float32)


def sparse_conv_apply(
    tensor: SparseTensor, weight: np.ndarray, rules: Rules, bias: np.ndarray = None
) -> SparseTensor:
    """Execute a sparse convolution given precomputed rules.

    Args:
        tensor: Input sparse tensor whose coords match ``rules.in_coords``.
        weight: (K*K, Cin, Cout) kernel in weight-index order.
        rules: Mapping from :func:`repro.sparse.rulegen.build_rules`.
        bias: Optional (Cout,) bias added to every *active output*.

    Returns:
        Sparse tensor over ``rules.out_coords``.
    """
    if tensor.num_active != rules.num_inputs:
        raise ValueError(
            f"tensor has {tensor.num_active} active pillars but rules expect "
            f"{rules.num_inputs}"
        )
    out_channels = weight.shape[2]
    accum_dtype = np.float64 if tensor.features.dtype == np.float64 else np.float32
    out_features = np.zeros((rules.num_outputs, out_channels), dtype=accum_dtype)
    for offset_index, pair in enumerate(rules.pairs):
        if len(pair) == 0:
            continue
        contribution = tensor.features[pair.in_idx] @ weight[offset_index]
        # Within one kernel offset the input->output map is injective, so
        # fancy-index accumulation is safe (no duplicate out_idx).
        out_features[pair.out_idx] += contribution
    if bias is not None:
        out_features += bias
    return SparseTensor(
        coords=rules.out_coords,
        features=out_features.astype(tensor.features.dtype),
        shape=rules.out_shape,
    )


def sparse_conv(
    tensor: SparseTensor,
    weight: np.ndarray,
    conv_type: ConvType,
    stride: int = 1,
    bias: np.ndarray = None,
) -> tuple:
    """Build rules and execute one sparse convolution.

    Returns:
        (output tensor, rules) so callers can reuse the mapping for
        hardware simulation.
    """
    kernel_size = int(round(np.sqrt(weight.shape[0])))
    if kernel_size * kernel_size != weight.shape[0]:
        raise ValueError(f"weight first dim {weight.shape[0]} is not a square")
    rules = build_rules(
        tensor.coords,
        tensor.shape,
        conv_type,
        kernel_size=kernel_size,
        stride=stride,
    )
    return sparse_conv_apply(tensor, weight, rules, bias=bias), rules


def dense_conv2d_reference(
    dense: np.ndarray, weight: np.ndarray, stride: int = 1
) -> np.ndarray:
    """Plain dense 2D convolution (kernel 3, pad 1) for validation.

    Args:
        dense: (Cin, H, W) input feature map.
        weight: (K*K, Cin, Cout) kernel in weight-index order.
        stride: Convolution stride.

    Returns:
        (Cout, H_out, W_out) output feature map.
    """
    num_offsets, in_channels, out_channels = weight.shape
    kernel_size = int(round(np.sqrt(num_offsets)))
    half = (kernel_size - 1) // 2
    _, height, width = dense.shape
    out_height = (height + stride - 1) // stride
    out_width = (width + stride - 1) // stride
    padded = np.pad(dense, ((0, 0), (half, half), (half, half)))
    output = np.zeros((out_channels, out_height, out_width), dtype=np.float64)
    for index in range(num_offsets):
        dr, dc = index // kernel_size - half, index % kernel_size - half
        window = padded[
            :,
            half + dr : half + dr + height : stride,
            half + dc : half + dc + width : stride,
        ]
        output += np.einsum("chw,co->ohw", window, weight[index])
    return output.astype(dense.dtype)


def dense_deconv2d_reference(dense: np.ndarray, weight: np.ndarray, stride: int) -> np.ndarray:
    """Dense non-overlapping transposed convolution (kernel = stride)."""
    num_offsets, in_channels, out_channels = weight.shape
    if num_offsets != stride * stride:
        raise ValueError("deconv reference expects kernel = stride")
    _, height, width = dense.shape
    output = np.zeros(
        (out_channels, height * stride, width * stride), dtype=np.float64
    )
    for index in range(num_offsets):
        dr, dc = index // stride, index % stride
        output[:, dr::stride, dc::stride] = np.einsum(
            "chw,co->ohw", dense, weight[index]
        )
    return output.astype(dense.dtype)
