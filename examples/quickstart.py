"""Quickstart: one LiDAR frame through the full SPADE stack.

Generates a synthetic KITTI-like sweep, encodes it into sparse pillars,
traces the SPP2 (SpConv-P) detector over it, and simulates both SPADE.HE
and the ideal dense accelerator — printing the computation savings,
latency, FPS and energy, which is the paper's headline result in
miniature.

The experiment is *declared as data*: an
:class:`~repro.engine.ExperimentSpec` names the simulators (registry
spec strings), the models, the scenario and the two meaningful grid
cells — the same JSON-serializable form the ``repro`` CLI executes
(``repro run examples/specs/smoke.json``), materialized here with
:meth:`~repro.engine.ExperimentSpec.build_runner`.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.engine import ExperimentSpec


def main():
    spec = ExperimentSpec(
        name="quickstart",
        simulators=["spade-he", "dense-he"],
        models=["SPP2", "PP"],
        scenarios=[{"name": "kitti-demo", "seed": 42}],
        # Only the two cells the story needs: SPADE runs the sparse
        # model, the ideal dense accelerator runs its dense counterpart.
        cells=[
            {"model": "SPP2", "simulator": "SPADE*"},
            {"model": "PP", "simulator": "DenseAcc*"},
        ],
    )
    runner = spec.build_runner()
    scenario = runner.scenarios[0]

    print("0. The whole experiment is one declarative spec "
          "(runnable as `repro run spec.json`):")
    print("   " + ", ".join(
        f"{key}={value!r}"
        for key, value in spec.to_dict().items()
        if value and key in ("simulators", "models", "cells")
    ))

    print("1. Generating a synthetic 64-beam LiDAR sweep and encoding "
          "pillars on the KITTI grid (432 x 496)...")
    batch = runner.frame_provider.frame_for(scenario, "SPP2")
    print(f"   {batch.num_active} active pillars "
          f"({100 * batch.occupancy:.2f}% of the grid — "
          f"{100 * (1 - batch.occupancy):.1f}% are zero vectors)")

    print("2. Tracing SPP2 (PointPillars + SpConv-P dynamic pruning) "
          "and its dense counterpart...")
    trace = runner.trace_for(scenario, "SPP2")
    dense_trace = runner.trace_for(scenario, "PP")
    savings = trace.savings_vs(dense_trace)
    print(f"   dense PP: {dense_trace.total_ops / 1e9:.1f} GOPs, "
          f"SPP2: {trace.total_ops / 1e9:.1f} GOPs "
          f"-> {100 * savings:.1f}% computation savings")

    print("3. Running the engine grid (SPADE on SPP2, DenseAcc on PP, "
          "traces served from the cache)...")
    table = runner.run()
    spade = table.get(model="SPP2", simulator="SPADE.HE")
    dense = table.get(model="PP", simulator="DenseAcc.HE")

    rows = [
        ("SPADE.HE on SPP2", spade.latency_ms, spade.fps,
         spade.energy_mj, spade.utilization),
        ("DenseAcc.HE on PP", dense.latency_ms, dense.fps,
         dense.energy_mj, dense.utilization),
    ]
    print()
    print(format_table(
        ["accelerator", "latency ms", "FPS", "energy mJ", "utilization"],
        rows,
    ))
    print(f"\nSpeedup {dense.cycles / spade.cycles:.2f}x, "
          f"energy savings {dense.energy_mj / spade.energy_mj:.2f}x — "
          f"proportional to the {100 * savings:.0f}% sparsity, "
          f"which is the point of the paper.")


if __name__ == "__main__":
    main()
