"""Quickstart: one LiDAR frame through the full SPADE stack.

Generates a synthetic KITTI-like sweep, encodes it into sparse pillars,
traces the SPP2 (SpConv-P) detector over it, and simulates both SPADE.HE
and the ideal dense accelerator — printing the computation savings,
latency, FPS and energy, which is the paper's headline result in
miniature.

Run:  python examples/quickstart.py
"""

from repro.analysis import compute_savings, format_table
from repro.core import SPADE_HE, DenseAccelerator, SpadeAccelerator
from repro.data import KITTI_GRID, KITTI_SCENE, SceneGenerator, voxelize


def main():
    print("1. Generating a synthetic 64-beam LiDAR sweep...")
    sweep = SceneGenerator(KITTI_SCENE, seed=42).generate()
    print(f"   {len(sweep)} points, {len(sweep.boxes)} objects")

    print("2. Encoding pillars on the KITTI grid (432 x 496)...")
    batch = voxelize(sweep, KITTI_GRID)
    print(f"   {batch.num_active} active pillars "
          f"({100 * batch.occupancy:.2f}% of the grid — "
          f"{100 * (1 - batch.occupancy):.1f}% are zero vectors)")

    print("3. Tracing SPP2 (PointPillars + SpConv-P dynamic pruning)...")
    trace, dense_trace, savings = compute_savings(
        "SPP2", batch.coords, batch.point_counts.astype(float)
    )
    print(f"   dense PP: {dense_trace.total_ops / 1e9:.1f} GOPs, "
          f"SPP2: {trace.total_ops / 1e9:.1f} GOPs "
          f"-> {100 * savings:.1f}% computation savings")

    print("4. Simulating SPADE.HE (64x64 systolic array, 8 TOPS)...")
    spade = SpadeAccelerator(SPADE_HE).run_trace(trace)
    dense = DenseAccelerator(SPADE_HE).run_trace(dense_trace)

    rows = [
        ("SPADE.HE on SPP2", spade.latency_ms, spade.fps,
         spade.energy_mj, spade.utilization(SPADE_HE)),
        ("DenseAcc.HE on PP", dense.latency_ms, dense.fps,
         dense.energy_mj, dense.utilization(SPADE_HE)),
    ]
    print()
    print(format_table(
        ["accelerator", "latency ms", "FPS", "energy mJ", "utilization"],
        rows,
    ))
    print(f"\nSpeedup {dense.total_cycles / spade.total_cycles:.2f}x, "
          f"energy savings {dense.energy_mj / spade.energy_mj:.2f}x — "
          f"proportional to the {100 * savings:.0f}% sparsity, "
          f"which is the point of the paper.")


if __name__ == "__main__":
    main()
