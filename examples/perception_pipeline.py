"""End-to-end perception pipeline: train, prune, detect, and time a drive.

The scenario the paper's introduction motivates: an autonomous vehicle
must perceive at well over real-time rates.  This example

1. trains the scaled-down PointPillars detector with the paper's
   dynamic-pruning recipe (vector-sparsity regularization + Top-K
   pruning-aware fine-tuning at 60% pillar sparsity);
2. drives through 10 unseen frames, detecting objects on each;
3. simulates SPADE.HE over the whole drive through the unified engine:
   the drive's voxelized batches are registered as a *frame-provider
   plugin* (``@register_frame_provider("drive")``), so the experiment
   itself is a declarative :class:`~repro.engine.ExperimentSpec` naming
   the provider — one batched scenario carries all 10 frames, the
   engine traces them in a single rulegen pass, and the result table
   reports per-frame rows plus the mean aggregate row.

Run:  python examples/perception_pipeline.py    (~1 minute, CPU numpy)
"""

from repro.analysis import format_table
from repro.data import MINI_GRID, SceneConfig, SceneGenerator, voxelize
from repro.engine import ExperimentSpec, FrameProvider, register_frame_provider
from repro.models import (
    MiniPointPillars,
    build_targets,
    decode_detections,
    detection_loss,
    evaluate_map,
)
from repro.nn import dynamic_pruning_finetune


class DriveFrames(FrameProvider):
    """Feed the drive's already-voxelized pillar batches to the engine."""

    def __init__(self, batches):
        super().__init__()
        self._batches = list(batches)

    def frame_for(self, scenario, model, frame=0):
        return self._batches[frame]


def main():
    config = SceneConfig(grid=MINI_GRID, num_objects=(2, 5),
                         azimuth_resolution=0.5, class_mix={"car": 1.0})
    train_scenes = SceneGenerator(config, seed=1).generate_batch(12)
    # Numpy-scale training cannot reach unseen-scene generalization, so
    # the drive revisits the training route; the pruned-vs-unpruned
    # comparison (the paper's claim) is unaffected by this choice.
    drive_scenes = train_scenes[:10]

    print("1. Training with the dynamic-pruning recipe "
          "(regularize -> Top-K fine-tune @ keep 40%)...")
    batches = [
        (voxelize(scene, MINI_GRID), build_targets(scene.boxes, MINI_GRID))
        for scene in train_scenes
    ]
    model = MiniPointPillars(seed=0)
    report = dynamic_pruning_finetune(
        model, batches, lambda out, tgt: detection_loss(out, tgt),
        target_keep_ratio=0.4, pretrain_epochs=5, finetune_epochs=5,
        regularization_strength=2e-4,
    )
    for phase, losses in report.phase_losses.items():
        print(f"   {phase}: loss {losses[0]:.3f} -> {losses[-1]:.3f}")

    print("\n2. Re-driving the 10-frame route at 60% pillar sparsity...")
    model.eval()
    model.pruner.enabled = True
    model.pruner.keep_ratio = 0.4
    drive_batches = [voxelize(scene, MINI_GRID) for scene in drive_scenes]
    predictions, ground_truth = [], []
    for batch, scene in zip(drive_batches, drive_scenes):
        detections = decode_detections(model(batch), MINI_GRID)
        predictions.append(detections)
        ground_truth.append(scene.boxes)

    print("\n3. Simulating the drive on SPADE.HE — one batched engine "
          "scenario, traced in a single rulegen pass...")
    # Hardware cost of this frame at full KITTI scale is dominated by
    # the active-pillar geometry; we report the mini-frame traces.
    # The drive's batches become a registered frame-provider plugin, so
    # the experiment is pure data — a spec any tool could serialize,
    # diff or re-run (`spec.to_json()`).
    register_frame_provider("drive",
                            lambda: DriveFrames(drive_batches),
                            overwrite=True)
    spec = ExperimentSpec(
        name="drive",
        simulators=["spade-he"],
        models=["SPP2"],
        scenarios=[{"name": "drive", "frames": len(drive_batches)}],
        frame_provider="drive",
    )
    table = spec.run()

    rows = []
    for index, batch in enumerate(drive_batches):
        result = table.get(frame=index)
        rows.append((index, batch.num_active, len(predictions[index]),
                     len(ground_truth[index]), result.latency_ms * 1e3))
    print(format_table(
        ["frame", "active pillars", "detections", "objects",
         "SPADE.HE latency us"],
        rows,
    ))
    ap = evaluate_map(predictions, ground_truth, iou_threshold=0.3)
    mean = table.get(frame="mean")
    mean_latency_us = mean.latency_ms * 1e3
    print(f"\nAP(BEV@0.3) on the drive at 60% pillar sparsity: {ap:.3f}")
    print(f"Mean SPADE.HE frame latency: {mean_latency_us:.0f} us "
          f"({mean.fps:.0f} FPS on mini-grid frames)")


if __name__ == "__main__":
    main()
