"""Sparsity exploration across the Table I model family.

Reproduces the paper's Sec. II-B exploration interactively: for every
benchmark model, trace one frame, and report GOPs, computation savings,
per-layer IOPR, and the accuracy-relevant occupancy statistics — the
data a model architect uses to pick a Pareto point (the paper picks
SPP2/SCP2).

Run:  python examples/sparsity_explorer.py
"""

from repro.analysis import (
    compute_savings,
    format_table,
    iopr_series,
)
from repro.data import SceneGenerator, voxelize
from repro.models import TABLE1_MODELS, TABLE1_PAPER, grid_for, scene_config_for


def main():
    frames = {}
    rows = []
    for name in TABLE1_MODELS:
        grid = grid_for(name)
        if grid.name not in frames:
            generator = SceneGenerator(scene_config_for(name), seed=1)
            frames[grid.name] = voxelize(generator.generate(), grid)
        batch = frames[grid.name]
        trace, dense_trace, savings = compute_savings(
            name, batch.coords, batch.point_counts.astype(float)
        )
        paper = TABLE1_PAPER[name]
        rows.append((
            name,
            paper.backbone,
            trace.total_ops / 1e9,
            paper.avg_gops,
            100 * savings,
            paper.sparsity_pct,
        ))

    print(format_table(
        ["model", "backbone", "GOPs (measured)", "GOPs (paper)",
         "savings % (measured)", "savings % (paper)"],
        rows,
        title="Table I exploration — who sits where on the"
              " sparsity/compute curve",
    ))

    print("\nPer-layer IOPR of the three SPP variants (Fig. 2(d-f)):")
    batch = frames["kitti"]
    for name in ("SPP1", "SPP2", "SPP3"):
        trace, _, _ = compute_savings(name, batch.coords,
                                      batch.point_counts.astype(float))
        series = iopr_series(trace)
        line = ", ".join(
            f"{layer}={iopr:.2f}" for layer, iopr, _ in series[:8]
        )
        print(f"  {name}: {line} ...")

    print("\nReading: SpConv models (SPP1) dilate and lose sparsity; "
          "SpConv-S (SPP3) keeps IOPR=1 but costs accuracy; SpConv-P "
          "(SPP2) prunes at stage starts and lands in between — the "
          "paper's Pareto pick.")


if __name__ == "__main__":
    main()
