"""Sparsity exploration across the Table I model family.

Reproduces the paper's Sec. II-B exploration interactively: for every
benchmark model, trace one frame, and report GOPs, computation savings,
per-layer IOPR, and the accuracy-relevant occupancy statistics — the
data a model architect uses to pick a Pareto point (the paper picks
SPP2/SCP2).

The whole exploration is one declarative
:class:`~repro.engine.ExperimentSpec`: the registered ``"stats"``
workload simulator over all eleven Table I models (also runnable from
the shell — ``repro run examples/specs/table1_kitti.json`` carries the
KITTI half).  The runner owns frame generation and the trace cache, so
rulegen happens once per model and the Fig. 2(d-f) IOPR pass reuses the
cached traces instead of re-tracing.

Run:  python examples/sparsity_explorer.py
"""

from repro.analysis import dense_counterpart, format_table, iopr_series
from repro.engine import ExperimentSpec
from repro.models import TABLE1_MODELS, TABLE1_PAPER


def main():
    spec = ExperimentSpec(
        name="sparsity-explorer",
        simulators=["stats"],
        models=list(TABLE1_MODELS),
        scenarios=[{"name": "explore", "seed": 1}],
    )
    runner = spec.build_runner()
    scenario = runner.scenarios[0]
    table = runner.run()

    def gops(name):
        row = table.get(model=name, simulator="TraceStats")
        return row.extras["total_ops"] / 1e9

    rows = []
    for name in TABLE1_MODELS:
        measured = gops(name)
        dense = gops(dense_counterpart(name))
        savings = 1.0 - measured / dense if dense else 0.0
        paper = TABLE1_PAPER[name]
        rows.append((
            name,
            paper.backbone,
            measured,
            paper.avg_gops,
            100 * savings,
            paper.sparsity_pct,
        ))

    print(format_table(
        ["model", "backbone", "GOPs (measured)", "GOPs (paper)",
         "savings % (measured)", "savings % (paper)"],
        rows,
        title="Table I exploration — who sits where on the"
              " sparsity/compute curve",
    ))

    print("\nPer-layer IOPR of the three SPP variants (Fig. 2(d-f)):")
    for name in ("SPP1", "SPP2", "SPP3"):
        series = iopr_series(runner.trace_for(scenario, name))
        line = ", ".join(
            f"{layer}={iopr:.2f}" for layer, iopr, _ in series[:8]
        )
        print(f"  {name}: {line} ...")

    print(f"\nTrace cache: {runner.cache.stats()} — every model traced "
          "once, the IOPR pass served from cache.")
    print("\nReading: SpConv models (SPP1) dilate and lose sparsity; "
          "SpConv-S (SPP3) keeps IOPR=1 but costs accuracy; SpConv-P "
          "(SPP2) prunes at stage starts and lands in between — the "
          "paper's Pareto pick.")


if __name__ == "__main__":
    main()
