"""Sparsity exploration across the Table I model family.

Reproduces the paper's Sec. II-B exploration interactively: for every
benchmark model, trace one frame, and report GOPs, computation savings,
per-layer IOPR, and the accuracy-relevant occupancy statistics — the
data a model architect uses to pick a Pareto point (the paper picks
SPP2/SCP2).

Frames and traces come from the unified engine: a
:class:`~repro.engine.FrameProvider` seeds one frame per grid and a
:class:`~repro.engine.TraceCache` runs rulegen once per model — the
dense counterparts and the Fig. 2(d-f) IOPR series all reuse the same
cached traces instead of re-tracing.

Run:  python examples/sparsity_explorer.py
"""

from repro.analysis import dense_counterpart, format_table, iopr_series
from repro.engine import FrameProvider, Scenario, TraceCache
from repro.models import TABLE1_MODELS, TABLE1_PAPER, build_model_spec


def main():
    scenario = Scenario("explore", seed=1)
    frames = FrameProvider()
    cache = TraceCache()

    def trace(name):
        frame = frames.frame_for(scenario, name)
        return cache.get_trace(
            build_model_spec(name),
            frame.coords,
            frame.point_counts.astype(float),
        )

    rows = []
    for name in TABLE1_MODELS:
        model_trace = trace(name)
        savings = model_trace.savings_vs(trace(dense_counterpart(name)))
        paper = TABLE1_PAPER[name]
        rows.append((
            name,
            paper.backbone,
            model_trace.total_ops / 1e9,
            paper.avg_gops,
            100 * savings,
            paper.sparsity_pct,
        ))

    print(format_table(
        ["model", "backbone", "GOPs (measured)", "GOPs (paper)",
         "savings % (measured)", "savings % (paper)"],
        rows,
        title="Table I exploration — who sits where on the"
              " sparsity/compute curve",
    ))

    print("\nPer-layer IOPR of the three SPP variants (Fig. 2(d-f)):")
    for name in ("SPP1", "SPP2", "SPP3"):
        series = iopr_series(trace(name))
        line = ", ".join(
            f"{layer}={iopr:.2f}" for layer, iopr, _ in series[:8]
        )
        print(f"  {name}: {line} ...")

    print(f"\nTrace cache: {cache.stats()} — every model traced once, "
          "the IOPR pass served from cache.")
    print("\nReading: SpConv models (SPP1) dilate and lose sparsity; "
          "SpConv-S (SPP3) keeps IOPR=1 but costs accuracy; SpConv-P "
          "(SPP2) prunes at stage starts and lands in between — the "
          "paper's Pareto pick.")


if __name__ == "__main__":
    main()
