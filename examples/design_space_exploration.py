"""Design-space exploration of the SPADE accelerator.

A hardware architect adopting SPADE would sweep the microarchitecture:
PE array size, buffer capacities, and the dataflow optimizations.  This
example evaluates a grid of configurations on the SPP2 workload and
prints latency / energy / area / efficiency so the Pareto frontier is
visible — including the paper's HE and LE design points.

Run:  python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro.analysis import format_table, trace_model
from repro.core import (
    SPADE_HE,
    SPADE_LE,
    SpadeAccelerator,
    SpadeConfig,
    accelerator_area,
)
from repro.data import KITTI_GRID, KITTI_SCENE, SceneGenerator, voxelize
from repro.models import build_model_spec


def candidate_configs():
    """The sweep: array sizes around the paper's HE/LE points."""
    yield "LE (paper)", SPADE_LE
    yield "32x32", SpadeConfig(name="32x32", pe_rows=32, pe_cols=32,
                               buf_in_bytes=32 * 1024,
                               buf_out_bytes=128 * 1024,
                               dram_bytes_per_cycle=32)
    yield "HE (paper)", SPADE_HE
    yield "HE small-buf", replace(SPADE_HE, buf_in_bytes=8 * 1024,
                                  buf_out_bytes=64 * 1024)
    yield "128x128", SpadeConfig(name="128x128", pe_rows=128, pe_cols=128,
                                 buf_in_bytes=64 * 1024,
                                 buf_out_bytes=512 * 1024,
                                 dram_bytes_per_cycle=128)


def main():
    sweep = SceneGenerator(KITTI_SCENE, seed=3).generate()
    batch = voxelize(sweep, KITTI_GRID)
    trace = trace_model(build_model_spec("SPP2"), batch.coords,
                        batch.point_counts.astype(float))

    rows = []
    for label, config in candidate_configs():
        for optimize in (True, False):
            result = SpadeAccelerator(config, optimize=optimize).run_trace(
                trace
            )
            area = accelerator_area(config).total_mm2
            rows.append((
                label + ("" if optimize else " (no opt)"),
                config.peak_tops,
                result.latency_ms,
                result.fps,
                result.energy_mj,
                area,
                result.fps / area,
                result.utilization(config),
            ))

    print(format_table(
        ["config", "peak TOPS", "latency ms", "FPS", "energy mJ",
         "area mm2", "FPS/mm2", "utilization"],
        rows,
        title="SPADE design-space exploration on SPP2 (one KITTI frame)",
    ))
    best = max(rows, key=lambda row: row[6])
    print(f"\nBest FPS/mm2: {best[0]} ({best[6]:.1f} FPS/mm2) — "
          "small arrays win on area efficiency, large on raw latency; "
          "dataflow optimizations matter most for the strided/deconv "
          "layers (compare the 'no opt' rows).")


if __name__ == "__main__":
    main()
