"""Design-space exploration of the SPADE accelerator.

A hardware architect adopting SPADE would sweep the microarchitecture:
PE array size, buffer capacities, and the dataflow optimizations.  This
example declares the whole sweep as one engine grid — ten simulator
variants on the SPP2 workload — and lets the
:class:`~repro.engine.ExperimentRunner` trace the frame once and fan the
configurations out over worker threads.  The printed table shows
latency / energy / area / efficiency so the Pareto frontier is visible,
including the paper's HE and LE design points.

Run:  python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.core import SPADE_HE, SPADE_LE, SpadeConfig, accelerator_area
from repro.engine import ExperimentRunner, Scenario, SpadeSimulator


def candidate_configs():
    """The sweep: array sizes around the paper's HE/LE points."""
    yield "LE (paper)", SPADE_LE
    yield "32x32", SpadeConfig(name="32x32", pe_rows=32, pe_cols=32,
                               buf_in_bytes=32 * 1024,
                               buf_out_bytes=128 * 1024,
                               dram_bytes_per_cycle=32)
    yield "HE (paper)", SPADE_HE
    yield "HE small-buf", replace(SPADE_HE, buf_in_bytes=8 * 1024,
                                  buf_out_bytes=64 * 1024)
    yield "128x128", SpadeConfig(name="128x128", pe_rows=128, pe_cols=128,
                                 buf_in_bytes=64 * 1024,
                                 buf_out_bytes=512 * 1024,
                                 dram_bytes_per_cycle=128)


def main():
    variants = []
    for label, config in candidate_configs():
        for optimize in (True, False):
            name = label + ("" if optimize else " (no opt)")
            variants.append(
                (name, config,
                 SpadeSimulator(config, optimize=optimize, name=name))
            )

    runner = ExperimentRunner(
        simulators=[simulator for _, _, simulator in variants],
        models=["SPP2"],
        scenarios=[Scenario("kitti-dse", seed=3)],
    )
    table = runner.run()  # one trace, ten configs, parallel fan-out

    rows = []
    for name, config, _ in variants:
        result = table.get(model="SPP2", simulator=name)
        area = accelerator_area(config).total_mm2
        rows.append((
            name,
            config.peak_tops,
            result.latency_ms,
            result.fps,
            result.energy_mj,
            area,
            result.fps / area,
            result.utilization,
        ))

    print(format_table(
        ["config", "peak TOPS", "latency ms", "FPS", "energy mJ",
         "area mm2", "FPS/mm2", "utilization"],
        rows,
        title="SPADE design-space exploration on SPP2 (one KITTI frame)",
    ))
    best = max(rows, key=lambda row: row[6])
    print(f"\nBest FPS/mm2: {best[0]} ({best[6]:.1f} FPS/mm2) — "
          "small arrays win on area efficiency, large on raw latency; "
          "dataflow optimizations matter most for the strided/deconv "
          "layers (compare the 'no opt' rows).")


if __name__ == "__main__":
    main()
