"""Design-space exploration of the SPADE accelerator.

A hardware architect adopting SPADE would sweep the microarchitecture:
PE array size, buffer capacities, and the dataflow optimizations.  This
example shows the engine's *plugin registry* doing real work: the sweep
registers its own simulator family (``@register_simulator("dse")``)
whose factory maps variant keys to custom :class:`SpadeConfig` points,
then declares the whole sweep as an
:class:`~repro.engine.ExperimentSpec` of plain ``"dse-..."`` spec
strings — exactly what a third-party accelerator plugin would do, and
the registered family works in JSON spec files and the ``repro`` CLI
too (``repro describe dse-he`` once this module is imported).  The
printed table shows latency / energy / area / efficiency so the Pareto
frontier is visible, including the paper's HE and LE design points.

Run:  python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.core import SPADE_HE, SPADE_LE, SpadeConfig, accelerator_area
from repro.engine import ExperimentSpec, SpadeSimulator, register_simulator

#: The sweep: array sizes around the paper's HE/LE design points.
CANDIDATES = {
    "le": ("LE (paper)", SPADE_LE),
    "32x32": ("32x32", SpadeConfig(name="32x32", pe_rows=32, pe_cols=32,
                                   buf_in_bytes=32 * 1024,
                                   buf_out_bytes=128 * 1024,
                                   dram_bytes_per_cycle=32)),
    "he": ("HE (paper)", SPADE_HE),
    "hesmallbuf": ("HE small-buf", replace(SPADE_HE,
                                           buf_in_bytes=8 * 1024,
                                           buf_out_bytes=64 * 1024)),
    "128x128": ("128x128", SpadeConfig(name="128x128", pe_rows=128,
                                       pe_cols=128,
                                       buf_in_bytes=64 * 1024,
                                       buf_out_bytes=512 * 1024,
                                       dram_bytes_per_cycle=128)),
}


@register_simulator("dse", overwrite=True)
def build_dse_variant(key: str = "", *flags):
    """This sweep's SPADE variants: ``dse-<key>`` / ``dse-<key>-noopt``."""
    if key not in CANDIDATES:
        raise ValueError(
            f"unknown DSE variant {key!r}; choices: {sorted(CANDIDATES)}"
        )
    label, config = CANDIDATES[key]
    optimize = "noopt" not in flags
    name = label + ("" if optimize else " (no opt)")
    return SpadeSimulator(config, optimize=optimize, name=name)


def main():
    # Ten simulators — five design points, with and without the
    # dataflow optimizations — declared as spec strings resolved
    # through the registered "dse" family.
    spec = ExperimentSpec(
        name="design-space",
        simulators=[f"dse-{key}" for key in CANDIDATES]
        + [f"dse-{key}-noopt" for key in CANDIDATES],
        models=["SPP2"],
        scenarios=[{"name": "kitti-dse", "seed": 3}],
    )
    table = spec.run()  # one trace, ten configs, parallel fan-out

    rows = []
    for key, (label, config) in CANDIDATES.items():
        for optimize in (True, False):
            name = label + ("" if optimize else " (no opt)")
            result = table.get(model="SPP2", simulator=name)
            area = accelerator_area(config).total_mm2
            rows.append((
                name,
                config.peak_tops,
                result.latency_ms,
                result.fps,
                result.energy_mj,
                area,
                result.fps / area,
                result.utilization,
            ))

    print(format_table(
        ["config", "peak TOPS", "latency ms", "FPS", "energy mJ",
         "area mm2", "FPS/mm2", "utilization"],
        rows,
        title="SPADE design-space exploration on SPP2 (one KITTI frame)",
    ))
    best = max(rows, key=lambda row: row[6])
    print(f"\nBest FPS/mm2: {best[0]} ({best[6]:.1f} FPS/mm2) — "
          "small arrays win on area efficiency, large on raw latency; "
          "dataflow optimizations matter most for the strided/deconv "
          "layers (compare the 'no opt' rows).")


if __name__ == "__main__":
    main()
